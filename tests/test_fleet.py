"""Worker-fleet tests: chaos spec, lease lifecycle, re-dispatch, dedup,
journal recovery, client retry, job quarantine, blob transfer, and the
golden bit-identity guarantee across a worker loss.

Everything here is ``@pytest.mark.fleet`` (run via ``make test-fleet``)
and sits under the conftest hard per-test deadline: a wedged fleet must
fail, never hang the suite.  Coordinator-level tests drive
:class:`FleetCoordinator` directly with ``start=False`` (no monitor
thread, no HTTP) so expiry and recovery are exercised deterministically
by calling ``check_expiry()`` by hand; the end-to-end tests embed a real
server and a real :class:`FleetWorker`.
"""

from __future__ import annotations

import base64
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro.harness.checkpoint import result_from_wire, result_to_wire
from repro.harness.export import to_dict
from repro.harness.faults import ChaosRule, ChaosSpec, parse_chaos_spec
from repro.harness.parallel import _run_cell_on, parallel_single_thread_comparison
from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobStore
from repro.service.scheduler import ExperimentScheduler
from repro.service.server import ExperimentServer
from repro.service.worker import FleetWorker
from repro.sim.streamstore import CompiledWorkload, StreamStore

pytestmark = pytest.mark.fleet

CONFIG = ExperimentConfig(scale=16, instructions=10_000, seed=1)


def _complete_ok(coordinator, worker_id, lease, cache=None):
    """Execute every cell of a lease for real and report it completed."""
    cache = cache or WorkloadCache(CONFIG)
    outcomes = []
    for cell in lease["cells"]:
        result = _run_cell_on(cache, (cell["benchmark"], cell["technique"]))
        payload = base64.b64encode(result_to_wire(result)).decode("ascii")
        outcomes.append(
            coordinator.complete(
                worker_id, lease["id"], cell["key"], "ok", result_b64=payload
            )["outcome"]
        )
    return outcomes


@pytest.fixture
def fleet_scheduler(tmp_path):
    """A fleet-mode scheduler with no running threads (tests drive the
    coordinator by hand) and a very small TTL."""
    scheduler = ExperimentScheduler(
        job_store=tmp_path / "service",
        fleet=True,
        lease_ttl=0.2,
        heartbeat_seconds=0.05,
        lease_cells=2,
        start=False,
    )
    yield scheduler
    scheduler.fleet.stop()
    scheduler.close(timeout=5.0)


# ----------------------------------------------------------------------
# chaos spec
# ----------------------------------------------------------------------
class TestChaosSpec:
    def test_parse_defaults_and_fields(self):
        spec = parse_chaos_spec("kill:1@1,heartbeat:0.5,blob")
        assert spec["kill"] == ChaosRule(1.0, 1)
        assert spec["heartbeat"] == ChaosRule(0.5, None)
        assert spec["blob"] == ChaosRule(1.0, None)
        assert parse_chaos_spec("") == {}
        assert parse_chaos_spec(None) == {}

    @pytest.mark.parametrize("bad", ["explode", "kill:1.5", "kill:-0.1",
                                     "kill:x", "kill@0", "kill@x"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_chaos_spec(bad)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "slow:0.25")
        spec = ChaosSpec.from_env()
        assert bool(spec)
        assert spec.rule("slow") == ChaosRule(0.25, None)
        assert spec.rule("kill") is None
        monkeypatch.delenv("REPRO_CHAOS")
        assert not ChaosSpec.from_env()

    def test_fires_is_deterministic_and_respects_attempt_cap(self):
        spec = ChaosSpec.from_env("kill:1@1,slow:0.5")
        assert spec.fires("kill", "mcf/sampler", attempt=1)
        assert not spec.fires("kill", "mcf/sampler", attempt=2)
        draws = [spec.fires("slow", f"cell-{i}", 1) for i in range(200)]
        assert draws == [spec.fires("slow", f"cell-{i}", 1) for i in range(200)]
        assert 0 < sum(draws) < 200  # probability actually thins the draws
        # A re-dispatch redraws: some identity flips between attempts.
        assert any(
            spec.fires("slow", f"cell-{i}", 1) != spec.fires("slow", f"cell-{i}", 2)
            for i in range(200)
        )


# ----------------------------------------------------------------------
# result wire format
# ----------------------------------------------------------------------
class TestResultWire:
    def test_roundtrip_preserves_stats(self):
        result = _run_cell_on(WorkloadCache(CONFIG), ("perlbench", None))
        back = result_from_wire(result_to_wire(result))
        assert back.llc_stats == result.llc_stats
        assert back.llc_hits == result.llc_hits
        assert back.workload == result.workload
        assert back.cache is None and back.observers == ()

    @pytest.mark.parametrize(
        "garbage", [b"", b"not a pickle", b"\x80\x05garbage"]
    )
    def test_rejects_undecodable(self, garbage):
        with pytest.raises(ValueError):
            result_from_wire(garbage)

    def test_rejects_wrong_type(self):
        import pickle

        with pytest.raises(ValueError, match="expected RunResult"):
            result_from_wire(pickle.dumps({"not": "a RunResult"}))


# ----------------------------------------------------------------------
# digest-addressed blob transfer (StreamStore raw IO)
# ----------------------------------------------------------------------
class TestBlobTransfer:
    def _compiled(self, store):
        cache = WorkloadCache(CONFIG, stream_store=store)
        return cache.compiled("perlbench")

    def test_raw_roundtrip_between_stores(self, tmp_path):
        source = StreamStore(tmp_path / "source")
        compiled = self._compiled(source)
        digest = StreamStore.digest_for_key(compiled.key)
        raw = source.load_raw(digest)
        assert raw is not None
        target = StreamStore(tmp_path / "target")
        stored = target.store_raw(raw, digest)
        assert stored.key == compiled.key
        assert target.load(compiled.key) is not None

    def test_store_raw_rejects_torn_and_mismatched(self, tmp_path):
        source = StreamStore(tmp_path / "source")
        compiled = self._compiled(source)
        digest = StreamStore.digest_for_key(compiled.key)
        raw = source.load_raw(digest)
        target = StreamStore(tmp_path / "target")
        with pytest.raises(ValueError):
            target.store_raw(raw[: len(raw) // 3], digest)  # truncated
        with pytest.raises(ValueError, match="digest"):
            target.store_raw(raw, "0" * 64)  # wrong address
        assert not list((tmp_path / "target").glob("*.rsc"))

    def test_path_for_digest_rejects_traversal(self, tmp_path):
        store = StreamStore(tmp_path / "s")
        assert store.path_for_digest("../../etc/passwd") is None
        assert store.path_for_digest("ABC") is None
        assert store.load_raw("..%2f..") is None
        assert store.path_for_digest("a" * 64) is not None


# ----------------------------------------------------------------------
# lease lifecycle: grant -> renew -> expire -> re-dispatch -> dedup
# ----------------------------------------------------------------------
class TestLeaseLifecycle:
    def test_full_cycle(self, fleet_scheduler):
        scheduler = fleet_scheduler
        coordinator = scheduler.fleet
        job = scheduler.submit(CONFIG, ["perlbench"], ["sampler"], sweep=True)
        assert job.state == "queued"

        grant = coordinator.register(name="w1", pid=123)
        worker_id = grant["worker_id"]
        assert grant["lease_ttl"] == pytest.approx(0.2)

        # Grant: lease_cells bounds the batch; each cell carries its key
        # and dispatch attempt.
        response = coordinator.lease(worker_id)
        lease = response["lease"]
        assert lease is not None and len(lease["cells"]) == 2
        assert all(cell["attempt"] == 1 for cell in lease["cells"])
        assert response["outstanding"] == 2

        # Heartbeat renewal pushes expiry out and flags unknown leases.
        before = coordinator._leases[lease["id"]].expires_at
        time.sleep(0.05)
        beat = coordinator.heartbeat(worker_id, [lease["id"], "lease-bogus"])
        assert coordinator._leases[lease["id"]].expires_at > before
        assert beat["unknown_leases"] == ["lease-bogus"]

        # Expiry: let the TTL lapse, scan, and the cells re-dispatch.
        time.sleep(0.25)
        assert coordinator.check_expiry() >= 1
        assert lease["id"] not in coordinator._leases
        stats = coordinator.stats()
        assert stats["cells"]["redispatched"] == 2
        assert stats["leases"]["expired"] == 1

        # Re-dispatch: the same cells come back with attempt == 2.
        retry = coordinator.lease(worker_id)["lease"]
        assert retry is not None
        assert sorted(c["key"] for c in retry["cells"]) == sorted(
            c["key"] for c in lease["cells"]
        )
        assert all(cell["attempt"] == 2 for cell in retry["cells"])

        # Complete for real; the late echo of the *old* lease's cells is
        # deduplicated, not double-counted.  (A one-technique sweep is
        # exactly these two cells: the LRU baseline plus the technique.)
        cache = WorkloadCache(CONFIG)
        assert _complete_ok(coordinator, worker_id, retry, cache) == [
            "accepted", "accepted",
        ]
        assert _complete_ok(coordinator, worker_id, lease, cache) == [
            "duplicate", "duplicate",
        ]

        assert scheduler.get(job.id).state == "done"
        stats = coordinator.stats()
        assert stats["cells"]["completed"] == 2
        assert stats["cells"]["duplicate_completions"] == 2
        assert coordinator.lease(worker_id)["lease"] is None

    def test_worker_failure_report_requeues_then_fails(self, fleet_scheduler):
        scheduler = fleet_scheduler
        coordinator = scheduler.fleet
        job = scheduler.submit(CONFIG, ["perlbench"], [], sweep=False)
        grant = coordinator.register(name="w1")
        worker_id = grant["worker_id"]
        attempts = 0
        while True:
            lease = coordinator.lease(worker_id)["lease"]
            if lease is None:
                break
            attempts += 1
            outcome = coordinator.complete(
                worker_id, lease["id"], lease["cells"][0]["key"],
                "error", error="boom",
            )["outcome"]
            if outcome == "failed":
                break
            assert outcome == "requeued"
        # max_retries=2 (the FaultPolicy default): three dispatches total.
        assert attempts == 3
        assert scheduler.get(job.id).state == "failed"
        assert "boom" in scheduler.get(job.id).error

    def test_deregister_requeues_immediately(self, fleet_scheduler):
        scheduler = fleet_scheduler
        coordinator = scheduler.fleet
        scheduler.submit(CONFIG, ["perlbench"], ["sampler"], sweep=True)
        worker_id = coordinator.register(name="leaver")["worker_id"]
        lease = coordinator.lease(worker_id)["lease"]
        assert lease is not None
        out = coordinator.deregister(worker_id)
        assert out["requeued_cells"] == len(lease["cells"])
        # No TTL wait: the cells are immediately grantable to another
        # worker, and the departed worker is forgotten (404 -> KeyError).
        other = coordinator.register(name="next")["worker_id"]
        assert coordinator.lease(other)["lease"] is not None
        with pytest.raises(KeyError):
            coordinator.lease(worker_id)

    def test_silent_worker_is_declared_dead(self, fleet_scheduler):
        coordinator = fleet_scheduler.fleet
        fleet_scheduler.submit(CONFIG, ["perlbench"], [], sweep=False)
        worker_id = coordinator.register(name="silent")["worker_id"]
        assert coordinator.lease(worker_id)["lease"] is not None
        time.sleep(0.3)  # past max(lease_ttl, 3*heartbeat) with no contact
        coordinator.check_expiry()
        stats = coordinator.stats()
        assert stats["workers"]["lost"] == 1
        assert stats["workers"]["states"].get("dead") == 1
        # Contact revives: the worker polls again and is alive once more.
        assert coordinator.lease(worker_id)["lease"] is not None


# ----------------------------------------------------------------------
# write-ahead lease journal
# ----------------------------------------------------------------------
class TestLeaseJournal:
    def test_restart_recovers_outstanding_leases(self, tmp_path):
        root = tmp_path / "service"
        first = ExperimentScheduler(
            job_store=root, fleet=True, lease_ttl=30.0, lease_cells=2,
            start=False,
        )
        job_id = first.submit(CONFIG, ["perlbench"], ["sampler"], sweep=True).id
        worker_id = first.fleet.register(name="w1")["worker_id"]
        lease = first.fleet.lease(worker_id)["lease"]
        assert lease is not None
        journal = json.loads((root / "leases.json").read_text())
        assert [rec["id"] for rec in journal["leases"]] == [lease["id"]]
        first.fleet.stop()  # simulate a crash: no drain, no completion

        second = ExperimentScheduler(
            job_store=root, fleet=True, lease_ttl=0.2, lease_cells=2,
            start=False,
        )
        try:
            stats = second.fleet.stats()
            assert stats["leases"]["recovered"] == 1
            assert stats["leases"]["active"] == 1
            # The surviving worker's id is honored across the restart...
            beat = second.fleet.heartbeat(worker_id, [lease["id"]])
            assert beat["unknown_leases"] == []
            # ...and if it never comes back, expiry re-dispatches as usual.
            time.sleep(0.25)
            assert second.fleet.check_expiry() >= 1
            retry = second.fleet.lease(
                second.fleet.register(name="w2")["worker_id"]
            )["lease"]
            assert retry is not None
            # Journal attempts survive: the re-dispatch is attempt 2.
            assert all(cell["attempt"] == 2 for cell in retry["cells"])
            assert second.get(job_id).state in ("queued", "running")
        finally:
            second.fleet.stop()
            second.close(timeout=5.0)

    def test_corrupt_journal_is_ignored(self, tmp_path):
        root = tmp_path / "service"
        root.mkdir(parents=True)
        (root / "leases.json").write_text("{ torn json", encoding="utf-8")
        scheduler = ExperimentScheduler(
            job_store=root, fleet=True, start=False
        )
        try:
            assert scheduler.fleet.stats()["leases"]["recovered"] == 0
        finally:
            scheduler.fleet.stop()
            scheduler.close(timeout=5.0)


# ----------------------------------------------------------------------
# client retry policy
# ----------------------------------------------------------------------
class _FlakyHandler(BaseHTTPRequestHandler):
    """Answers 503 (with Retry-After) a configured number of times, then
    200 with an empty JSON object."""

    failures_left = 2
    seen = 0

    def do_GET(self):  # noqa: N802 (stdlib naming)
        cls = type(self)
        cls.seen += 1
        if cls.failures_left > 0:
            cls.failures_left -= 1
            body = b'{"error": "draining"}\n'
            self.send_response(503)
            self.send_header("Retry-After", "0.01")
        else:
            body = b'{"status": "ok"}\n'
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):
        pass


@pytest.fixture
def flaky_server():
    _FlakyHandler.failures_left = 2
    _FlakyHandler.seen = 0
    httpd = HTTPServer(("127.0.0.1", 0), _FlakyHandler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{httpd.server_port}"
    httpd.shutdown()
    thread.join(timeout=10.0)


class TestClientRetry:
    def test_retries_503_honoring_retry_after(self, flaky_server):
        client = ServiceClient(flaky_server, max_retries=3, backoff=0.01)
        assert client.healthz() == {"status": "ok"}
        assert client.retries_performed == 2
        assert _FlakyHandler.seen == 3

    def test_max_retries_zero_is_an_escape_hatch(self, flaky_server):
        client = ServiceClient(flaky_server, max_retries=0)
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after == pytest.approx(0.01)
        assert _FlakyHandler.seen == 1

    def test_gives_up_after_budget(self, flaky_server):
        _FlakyHandler.failures_left = 99
        client = ServiceClient(flaky_server, max_retries=2, backoff=0.01)
        with pytest.raises(ServiceError) as excinfo:
            client.stats()
        assert excinfo.value.status == 503
        assert _FlakyHandler.seen == 3  # 1 try + 2 retries, no more

    def test_retries_connection_refused(self):
        # Grab a port nobody is listening on.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(
            f"http://127.0.0.1:{port}", max_retries=1, backoff=0.01
        )
        with pytest.raises(OSError):
            client.healthz()
        assert client.retries_performed == 1

    def test_non_retryable_status_is_not_retried(self, flaky_server):
        _FlakyHandler.failures_left = 0
        client = ServiceClient(flaky_server, max_retries=3)
        client.healthz()
        assert client.retries_performed == 0


# ----------------------------------------------------------------------
# job quarantine
# ----------------------------------------------------------------------
class TestJobQuarantine:
    def test_resume_quarantines_corrupt_records(self, tmp_path, capsys):
        store = JobStore(tmp_path)
        from repro.service.jobs import Job

        good = Job.new("cell", "c", 0, CONFIG, ["perlbench"], [],
                       [("perlbench", None)])
        store.save(good)
        torn = store.path("job-torn")
        torn.write_text('{"id": "job-torn", "kind"', encoding="utf-8")
        jobs = store.resume()
        assert [job.id for job in jobs] == [good.id]
        assert store.quarantined_count == 1
        assert (store.corrupt_dir / "job-torn.json").exists()
        assert not torn.exists()
        assert "quarantined" in capsys.readouterr().err
        # A second resume neither re-trips nor double-counts.
        store.resume()
        assert store.quarantined_count == 1

    def test_healthz_surfaces_quarantine_count(self, tmp_path):
        scheduler = ExperimentScheduler(
            job_store=tmp_path / "service", start=False
        )
        bad = scheduler.job_store.path("job-bad")
        bad.write_text("no json here", encoding="utf-8")
        scheduler.job_store.resume()
        handle = ExperimentServer(scheduler, port=0).start_in_thread()
        try:
            health = ServiceClient(
                f"http://127.0.0.1:{handle.port}"
            ).healthz()
            assert health["quarantined_jobs"] == 1
            assert "fleet_workers_alive" not in health  # fleet off
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# end-to-end: HTTP fleet, blob chaos, and golden bit-identity
# ----------------------------------------------------------------------
def _fleet_server(tmp_path, **overrides):
    kwargs = dict(
        job_store=tmp_path / "service",
        stream_cache=tmp_path / "streams",
        fleet=True,
        lease_ttl=0.5,
        heartbeat_seconds=0.1,
        lease_cells=2,
    )
    kwargs.update(overrides)
    scheduler = ExperimentScheduler(**kwargs)
    return ExperimentServer(scheduler, port=0).start_in_thread()


class TestFleetOverHttp:
    def test_fleet_routes_404_when_disabled(self, tmp_path):
        scheduler = ExperimentScheduler(
            job_store=tmp_path / "service", start=False
        )
        handle = ExperimentServer(scheduler, port=0).start_in_thread()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{handle.port}", max_retries=0
            )
            with pytest.raises(ServiceError) as excinfo:
                client.fleet_register(name="w")
            assert excinfo.value.status == 404
            assert "fleet mode disabled" in excinfo.value.message
            with pytest.raises(ServiceError) as excinfo:
                client.fetch_blob("a" * 64)
            assert excinfo.value.status == 404
        finally:
            handle.stop()

    @pytest.mark.fleet(timeout=240)
    def test_blob_chaos_truncation_detected_and_retried(
        self, tmp_path, monkeypatch
    ):
        handle = _fleet_server(tmp_path)
        try:
            # Prime the server's store with the blob workers will want.
            server_store = handle.scheduler.stream_store
            compiled = WorkloadCache(
                CONFIG, stream_store=server_store
            ).compiled("perlbench")
            digest = StreamStore.digest_for_key(compiled.key)
            url = f"http://127.0.0.1:{handle.port}"

            # First attempt is chaos-truncated and must fail decode...
            monkeypatch.setenv("REPRO_CHAOS", "blob:1@1")
            client = ServiceClient(url)
            torn = client.fetch_blob(digest, attempt=1)
            with pytest.raises(ValueError):
                CompiledWorkload.from_buffer(torn)
            # ...while the worker's bounded-retry fetch path survives it:
            # attempt 1 torn, attempt 2 clean, verified, and persisted.
            worker = FleetWorker(
                url, name="fetcher", client=client,
                stream_cache=StreamStore(tmp_path / "worker-streams"),
            )
            fetched = worker._fetch_blob(digest, "perlbench")
            assert fetched is not None and fetched.key == compiled.key
            assert worker.stats["blob_torn_transfers"] == 1
            assert worker.stream_store.load(compiled.key) is not None

            # Permanent truncation exhausts retries -> local compile path.
            monkeypatch.setenv("REPRO_CHAOS", "blob:1")
            broken = FleetWorker(url, name="fallback", client=client)
            assert broken._fetch_blob(digest, "perlbench") is None
            assert broken.stats["blob_torn_transfers"] == broken.blob_retries

            stats = handle.scheduler.fleet.stats()
            assert stats["blobs"]["chaos_truncated"] >= 4
        finally:
            monkeypatch.delenv("REPRO_CHAOS", raising=False)
            handle.stop()

    @pytest.mark.fleet(timeout=240)
    def test_golden_bit_identity_across_worker_loss(self, tmp_path):
        serial = parallel_single_thread_comparison(
            WorkloadCache(CONFIG), ["sampler", "rrip"], ("perlbench",), jobs=1
        )
        expected = to_dict(serial)

        handle = _fleet_server(tmp_path)
        try:
            url = f"http://127.0.0.1:{handle.port}"
            client = ServiceClient(url)
            job = client.submit(
                client="golden",
                benchmarks=["perlbench"], techniques=["sampler", "rrip"],
                sweep=True,
                config={
                    "scale": CONFIG.scale,
                    "instructions": CONFIG.instructions,
                    "seed": CONFIG.seed,
                    "cores": CONFIG.num_cores,
                },
            )
            # A ghost worker grabs the first lease and vanishes without
            # ever completing or heartbeating -- the in-process stand-in
            # for a kill -9.  Its lease must expire and re-dispatch.
            coordinator = handle.scheduler.fleet
            ghost = coordinator.register(name="ghost")["worker_id"]
            assert coordinator.lease(ghost)["lease"] is not None

            worker = FleetWorker(
                url, name="survivor", once=True,
                stream_cache=StreamStore(tmp_path / "worker-streams"),
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            try:
                final = client.wait(job["id"], timeout=180.0)
                assert final["state"] == "done", final.get("error")
                assert client.result(job["id"]) == expected
            finally:
                worker.stop()
                thread.join(timeout=30.0)
            assert not thread.is_alive()

            fleet = client.stats()["fleet"]
            assert fleet["cells"]["redispatched"] >= 1
            assert fleet["leases"]["expired"] >= 1
            assert fleet["cells"]["completed"] == 3
            assert worker.stats["blob_local_hits"] + worker.stats[
                "blob_fetches"
            ] >= 1  # the sweep's workload arrived via the blob protocol
        finally:
            handle.stop()
