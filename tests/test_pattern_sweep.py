"""Pattern workloads end-to-end: golden bit-identity and the sweep axis.

Parameterized specs must be plain benchmark names to every transport --
serial harness, parallel spawn pools, stream store, shared memory, the
experiment service.  The golden tests here mirror
``test_streamstore_sweep.py`` with pattern specs in the benchmark slots;
any divergence means a spec's canonical identity leaked somewhere.
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import (
    pattern_axis,
    pattern_sweep_experiment,
    single_thread_comparison,
    zipf_skew_axis,
)
from repro.harness.parallel import parallel_single_thread_comparison
from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.sim.streamstore import StreamStore

pytestmark = pytest.mark.workloads

TINY = ExperimentConfig(scale=32, instructions=20_000, seed=3)
BENCHMARKS = ("zipf(a=1.2)", "blend(seq(streams=2),uniform,weights=2:1)")
TECHNIQUE_KEYS = ("sampler",)


@pytest.fixture(autouse=True)
def _isolate_store_env(monkeypatch):
    for name in ("REPRO_STREAM_CACHE", "REPRO_SHM", "REPRO_STREAM_REQUIRE"):
        monkeypatch.delenv(name, raising=False)


@pytest.fixture(scope="module")
def reference():
    return single_thread_comparison(WorkloadCache(TINY), TECHNIQUE_KEYS, BENCHMARKS)


def assert_bit_identical(reference, comparison):
    for benchmark in BENCHMARKS:
        assert (
            reference.baseline[benchmark].llc_stats.snapshot()
            == comparison.baseline[benchmark].llc_stats.snapshot()
        )
        assert reference.baseline[benchmark].ipc == comparison.baseline[benchmark].ipc
        for key in TECHNIQUE_KEYS:
            mine = reference.results[benchmark][key]
            theirs = comparison.results[benchmark][key]
            assert mine.llc_stats.snapshot() == theirs.llc_stats.snapshot()
            assert mine.llc_hits == theirs.llc_hits
            assert mine.ipc == theirs.ipc


class TestGoldenBitIdentity:
    def test_serial_store_cold_then_warm(self, reference, tmp_path, monkeypatch):
        store = StreamStore(tmp_path / "store")
        cold = parallel_single_thread_comparison(
            TINY, TECHNIQUE_KEYS, BENCHMARKS, jobs=1, stream_cache=store
        )
        assert_bit_identical(reference, cold)
        assert len(store) == len(BENCHMARKS)
        # Warm re-run must come entirely off disk; REPRO_STREAM_REQUIRE
        # turns any cold compile into a hard error.
        monkeypatch.setenv("REPRO_STREAM_REQUIRE", "1")
        warm = parallel_single_thread_comparison(
            TINY, TECHNIQUE_KEYS, BENCHMARKS, jobs=1, stream_cache=store
        )
        assert_bit_identical(reference, warm)

    def test_store_off_is_unchanged(self, reference):
        comparison = parallel_single_thread_comparison(
            TINY, TECHNIQUE_KEYS, BENCHMARKS, jobs=1
        )
        assert_bit_identical(reference, comparison)

    @pytest.mark.faults
    def test_parallel_store_bit_identical(self, reference, tmp_path):
        store = StreamStore(tmp_path / "store")
        comparison = parallel_single_thread_comparison(
            TINY, TECHNIQUE_KEYS, BENCHMARKS, jobs=2, stream_cache=store
        )
        assert_bit_identical(reference, comparison)

    @pytest.mark.faults
    def test_parallel_shm_bit_identical(self, reference, tmp_path):
        store = StreamStore(tmp_path / "store")
        comparison = parallel_single_thread_comparison(
            TINY, TECHNIQUE_KEYS, BENCHMARKS,
            jobs=2, stream_cache=store, shared_memory=True,
        )
        assert_bit_identical(reference, comparison)


class TestSweepAxis:
    def test_zipf_skew_axis_defaults(self):
        specs = zipf_skew_axis()
        assert len(specs) >= 4
        assert list(specs) == [
            "zipf(a=0.6)", "zipf(a=0.9)", "zipf(a=1.2)", "zipf(a=1.5)",
        ]

    def test_pattern_axis_other_families(self):
        assert list(pattern_axis("hotspot", "hot", (0.05, 0.2))) == [
            "hotspot(hot=0.05)", "hotspot(hot=0.2)",
        ]
        assert list(pattern_axis("bursty", "burst", (32, 128), base="idle=100")) == [
            "bursty(idle=100,burst=32)", "bursty(idle=100,burst=128)",
        ]

    def test_pattern_sweep_experiment_rows(self):
        specs = ("zipf(a=0.8)", "zipf(a=1.4)")
        result = pattern_sweep_experiment(WorkloadCache(TINY), specs)
        assert result.specs == specs
        for spec in specs:
            assert 0.0 <= result.lru_miss_rate[spec] <= 1.0
            assert 0.0 <= result.dbrb_miss_rate[spec] <= 1.0
            assert 0.0 <= result.coverage[spec] <= 1.0
            assert 0.0 <= result.false_positive[spec] <= 1.0
        rows = result.rows()
        assert rows[0][0] == "workload"
        assert len(rows) == 1 + len(specs)

    def test_sweep_is_deterministic(self):
        specs = ("zipf(a=1.2)",)
        first = pattern_sweep_experiment(WorkloadCache(TINY), specs)
        second = pattern_sweep_experiment(WorkloadCache(TINY), specs)
        assert first.lru_miss_rate == second.lru_miss_rate
        assert first.dbrb_miss_rate == second.dbrb_miss_rate
        assert first.coverage == second.coverage


class TestServiceValidation:
    def test_scheduler_accepts_pattern_specs(self, tmp_path):
        from repro.service.scheduler import ExperimentScheduler

        scheduler = ExperimentScheduler(tmp_path / "service", start=False)
        job = scheduler.submit(TINY, ["zipf(a=1.2)"], ["sampler"], sweep=True)
        assert job.state in ("queued", "running", "done")

    def test_scheduler_rejects_misspellings_with_suggestions(self, tmp_path):
        from repro.service.scheduler import ExperimentScheduler

        scheduler = ExperimentScheduler(tmp_path / "service", start=False)
        with pytest.raises(ValueError, match="hmmer"):
            scheduler.submit(TINY, ["hmmr"], ["sampler"], sweep=True)
        with pytest.raises(ValueError, match="sampler"):
            scheduler.submit(TINY, ["mcf"], ["samplr"], sweep=True)
        with pytest.raises(ValueError, match="zipf"):
            scheduler.submit(TINY, ["zipg(a=1.2)"], ["sampler"], sweep=True)

    @pytest.mark.service
    def test_http_submit_maps_bad_spec_to_400_with_suggestion(self, tmp_path):
        from repro.service.client import ServiceClient, ServiceError
        from repro.service.scheduler import ExperimentScheduler
        from repro.service.server import ExperimentServer

        scheduler = ExperimentScheduler(tmp_path / "service", start=False)
        handle = ExperimentServer(scheduler, port=0).start_in_thread()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{handle.port}", max_retries=0
            )
            with pytest.raises(ServiceError) as excinfo:
                client.submit(
                    benchmarks=["zipg(a=1.2)"], techniques=["sampler"], sweep=True
                )
            assert excinfo.value.status == 400
            assert "zipf" in str(excinfo.value)
        finally:
            handle.stop()
