"""Tests for the reuse-distance profiler."""

import pytest

from repro.analysis.reuse import COLD, profile_trace, reuse_histogram
from repro.sim.trace import Trace, TraceRecord
from repro.workloads import build_trace


def trace_of(blocks, pc=0x400):
    return Trace(
        "t", [TraceRecord(pc, b * 64, False, 0, False) for b in blocks]
    )


def brute_force_distances(blocks):
    """Reference stack-distance computation, O(n^2)."""
    distances = []
    last = {}
    for i, b in enumerate(blocks):
        if b in last:
            distances.append(len(set(blocks[last[b] + 1 : i])))
        else:
            distances.append(COLD)
        last[b] = i
    return distances


class TestProfileTrace:
    def test_all_cold_for_distinct_blocks(self):
        profile = profile_trace(trace_of([0, 1, 2, 3]))
        assert profile.cold_references == 4
        assert profile.reuse_fraction == 0.0

    def test_immediate_reuse_distance_zero(self):
        profile = profile_trace(trace_of([0, 0]))
        assert profile.distances == {0: 1}

    def test_distance_counts_unique_blocks(self):
        # 0 .. 1 2 3 .. 0: distance 3 -> bucket 1 ([2,4)).
        profile = profile_trace(trace_of([0, 1, 2, 3, 0]))
        assert profile.distances.get(1) == 1

    def test_matches_brute_force_on_random_string(self):
        from repro.utils.rng import XorShift64

        rng = XorShift64(17)
        blocks = [rng.randrange(12) for _ in range(300)]
        expected = brute_force_distances(blocks)
        profile = profile_trace(trace_of(blocks))
        assert profile.cold_references == sum(1 for d in expected if d == COLD)
        expected_buckets = {}
        for d in expected:
            if d == COLD:
                continue
            bucket = max(d, 1).bit_length() - 1
            expected_buckets[bucket] = expected_buckets.get(bucket, 0) + 1
        assert profile.distances == expected_buckets

    def test_intra_block_touches_fold_together(self):
        trace = Trace(
            "t",
            [
                TraceRecord(0x1, 0, False, 0, False),
                TraceRecord(0x1, 32, False, 0, False),  # same 64B block
            ],
        )
        profile = profile_trace(trace)
        assert profile.cold_references == 1
        assert profile.distances == {0: 1}

    def test_pc_llc_reuse_ratio(self):
        # pc A reuses at distance 1 (within reach); pc B at distance
        # beyond reach.
        blocks = [0, 0]  # pc A
        records = [TraceRecord(0xA, b * 64, False, 0, False) for b in blocks]
        records += [TraceRecord(0xB, b * 64, False, 0, False) for b in range(1, 200)]
        records += [TraceRecord(0xB, 64, False, 0, False)]  # distance ~198
        profile = profile_trace(Trace("t", records), llc_reach=64)
        assert profile.pc_llc_reuse_ratio(0xA) == pytest.approx(1.0)
        assert profile.pc_llc_reuse_ratio(0xB) == pytest.approx(0.0)
        assert profile.pc_llc_reuse_ratio(0xC) is None

    def test_hit_fraction_monotone_in_capacity(self):
        trace = build_trace("hmmer", 30_000, 64 * 1024)
        profile = profile_trace(trace)
        small = profile.hit_fraction(64)
        large = profile.hit_fraction(4096)
        assert 0.0 <= small <= large <= 1.0

    def test_summary_renders(self):
        profile = profile_trace(trace_of([0, 1, 0, 1]))
        text = profile.summary()
        assert "references" in text
        assert "cold" in text

    def test_reuse_histogram_multiple_traces(self):
        text = reuse_histogram([trace_of([0, 0]), trace_of([1, 2])])
        assert text.count("reuse profile") == 2


class TestArchetypeProfiles:
    """The profiler confirms the archetypes' intended statistics."""

    LLC_BYTES = 64 * 1024  # 1,024 blocks

    def test_hotcold_reuses_more_than_streaming(self):
        streaming = profile_trace(build_trace("milc", 40_000, self.LLC_BYTES))
        hotcold = profile_trace(build_trace("omnetpp", 40_000, self.LLC_BYTES))
        # milc's reuse is intra-block bursts (distance ~0, L1 fodder);
        # omnetpp's is genuine block-level reuse.  Compare at distances
        # beyond the trivial bucket.
        def nontrivial_reuse(profile):
            reuses = sum(
                count for bucket, count in profile.distances.items() if bucket >= 2
            )
            return reuses / profile.total_references

        assert nontrivial_reuse(hotcold) > 2 * nontrivial_reuse(streaming)
        assert hotcold.reuse_fraction > 0.55

    def test_streaming_cold_share_substantial(self):
        profile = profile_trace(build_trace("milc", 40_000, self.LLC_BYTES))
        assert profile.cold_references > 0.25 * profile.total_references
