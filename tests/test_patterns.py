"""Pattern-generator family: determinism, spec grammar, and error UX.

The workload subsystem's contract is *name-as-spec*: a canonical spec
string fully determines the emitted trace, so checkpoint keys, stream
store keys, and service dedup all work off the name alone.  These tests
pin the contract with hypothesis over the parameter space of every
family: same spec -> byte-identical records, different seed -> a
different trace, and parse(spec()) is the identity.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    PATTERN_FAMILIES,
    BurstyPattern,
    ComposedPattern,
    HotspotPattern,
    SequentialPattern,
    UniformRandomPattern,
    UnknownWorkloadError,
    WorkloadSpecError,
    ZipfianPattern,
    compose,
    generator_for,
    mix_members,
    parse_workload_spec,
    resolve_workload,
    workload_spec,
    workload_spec_digest,
)

pytestmark = pytest.mark.workloads

INSTRUCTIONS = 6_000
LLC_BYTES = 32 * 1024


def trace_bytes(generator):
    """A trace's full identity: every record field plus the accounting."""
    trace = generator.generate(INSTRUCTIONS, LLC_BYTES)
    return (trace.name, trace.instructions, tuple(trace.records))


def spec_strategy():
    """Random specs across every simple family (valid parameter values)."""
    return st.one_of(
        st.builds(
            lambda a, gap, write, seed: (f"zipf(a={a},gap={gap},write={write})", seed),
            st.sampled_from(["0.6", "0.9", "1.2", "1.5"]),
            st.integers(min_value=1, max_value=8),
            st.sampled_from(["0.0", "0.25", "0.5"]),
            st.integers(min_value=1, max_value=5),
        ),
        st.builds(
            lambda hot, p, seed: (f"hotspot(hot={hot},p={p})", seed),
            st.sampled_from(["0.05", "0.1", "0.2"]),
            st.sampled_from(["0.8", "0.9", "0.95"]),
            st.integers(min_value=1, max_value=5),
        ),
        st.builds(
            lambda burst, idle, seed: (f"bursty(burst={burst},idle={idle})", seed),
            st.integers(min_value=8, max_value=128),
            st.integers(min_value=10, max_value=400),
            st.integers(min_value=1, max_value=5),
        ),
        st.builds(
            lambda streams, seed: (f"seq(streams={streams})", seed),
            st.integers(min_value=1, max_value=8),
            st.integers(min_value=1, max_value=5),
        ),
        st.builds(
            lambda footprint, seed: (f"uniform(footprint={footprint})", seed),
            st.sampled_from(["0.5", "1.0", "2.0", "4.0"]),
            st.integers(min_value=1, max_value=5),
        ),
    )


class TestDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(spec_strategy())
    def test_same_spec_is_byte_identical(self, case):
        text, seed = case
        first = parse_workload_spec(text, seed=seed)
        second = parse_workload_spec(text, seed=seed)
        assert first.name == second.name
        assert trace_bytes(first) == trace_bytes(second)

    @settings(max_examples=40, deadline=None)
    @given(spec_strategy())
    def test_distinct_seeds_give_distinct_traces(self, case):
        text, seed = case
        base = parse_workload_spec(text, seed=seed)
        other = parse_workload_spec(text, seed=seed + 17)
        assert base.name != other.name
        assert trace_bytes(base) != trace_bytes(other)

    @settings(max_examples=40, deadline=None)
    @given(spec_strategy())
    def test_parse_of_spec_is_identity(self, case):
        text, seed = case
        generator = parse_workload_spec(text, seed=seed)
        reparsed = parse_workload_spec(generator.spec())
        assert reparsed.name == generator.name
        assert trace_bytes(reparsed) == trace_bytes(generator)

    def test_every_family_constructs_with_defaults(self):
        for family in sorted(PATTERN_FAMILIES):
            if family in ("phased", "blend", "trace"):
                continue  # compose needs parts; trace needs a source
            generator = resolve_workload(family, seed=2)
            trace = generator.generate(INSTRUCTIONS, LLC_BYTES)
            assert trace.records, family
            assert trace.instructions >= INSTRUCTIONS


class TestCanonicalSpec:
    def test_parameter_order_does_not_matter(self):
        left = parse_workload_spec("zipf(seed=7,a=1.2)")
        right = parse_workload_spec("zipf(a=1.2,seed=7)")
        assert left.name == right.name
        assert trace_bytes(left) == trace_bytes(right)

    def test_defaults_are_filled_in(self):
        implicit = parse_workload_spec("zipf", seed=1)
        explicit = ZipfianPattern(seed=1)
        assert implicit.name == explicit.name
        assert "a=1.2" in implicit.name and "seed=1" in implicit.name

    def test_float_valued_ints_render_as_ints(self):
        generator = ZipfianPattern(footprint=4.0, seed=1)
        assert "footprint=4," in generator.name

    def test_spec_digest_tracks_parameters(self):
        assert workload_spec("zipf(a=1.2)") != workload_spec("zipf(a=1.3)")
        assert workload_spec_digest("zipf(a=1.2)") != workload_spec_digest(
            "zipf(a=1.3)"
        )
        # Suite benchmarks keep a distinct (non-pattern) spec namespace.
        assert workload_spec("mcf").startswith("suite|")

    def test_seed_kwarg_is_overridden_by_explicit_seed(self):
        generator = parse_workload_spec("zipf(a=1.2,seed=9)", seed=3)
        assert "seed=9" in generator.name


class TestCompose:
    def test_phased_concatenates_parts(self):
        generator = compose(
            ZipfianPattern(a=1.2, seed=1), SequentialPattern(streams=2, seed=1),
            weights=(2, 1), seed=4,
        )
        trace = generator.generate(INSTRUCTIONS, LLC_BYTES)
        assert trace.instructions >= INSTRUCTIONS
        assert generator.name.startswith("phased(")
        assert "weights=2:1" in generator.name

    def test_blend_interleaves_parts(self):
        generator = parse_workload_spec(
            "blend(zipf(a=1.4),uniform,weights=3:1)", seed=2
        )
        assert isinstance(generator, ComposedPattern)
        trace = generator.generate(INSTRUCTIONS, LLC_BYTES)
        zipf_pcs = {r.pc for r in generator.parts[0].generate(2_000, LLC_BYTES).records}
        assert any(record.pc in zipf_pcs for record in trace.records)

    def test_composed_spec_round_trips(self):
        generator = parse_workload_spec(
            "phased(zipf(a=1.2),seq(streams=2),weights=1:1)", seed=5
        )
        reparsed = parse_workload_spec(generator.spec())
        assert reparsed.name == generator.name
        assert trace_bytes(reparsed) == trace_bytes(generator)


class TestErrorSuggestions:
    def test_unknown_family_suggests_closest(self):
        with pytest.raises(WorkloadSpecError) as excinfo:
            resolve_workload("zipg(a=1.2)")
        assert "did you mean 'zipf'" in str(excinfo.value)

    def test_unknown_benchmark_suggests_closest(self):
        with pytest.raises(UnknownWorkloadError) as excinfo:
            generator_for("hmmr")
        message = str(excinfo.value)
        assert "hmmer" in message
        # The full sorted inventory is listed so users can self-serve.
        assert "mcf" in message

    def test_unknown_parameter_suggests_closest(self):
        with pytest.raises(WorkloadSpecError) as excinfo:
            parse_workload_spec("zipf(alpha=1.2)")
        assert "a" in str(excinfo.value).split("did you mean")[-1]

    def test_bad_parameter_type_is_rejected(self):
        with pytest.raises(WorkloadSpecError):
            parse_workload_spec("zipf(a=hot)")
        with pytest.raises(WorkloadSpecError):
            ZipfianPattern(a=-1.0)

    def test_mix_members_accepts_pattern_specs(self):
        members = mix_members("mcf+zipf(a=1.4)+seq(streams=8)")
        assert list(members) == ["mcf", "zipf(a=1.4)", "seq(streams=8)"]
        with pytest.raises(ValueError) as excinfo:
            mix_members("mcf+zipg(a=1.4)")
        assert "zipf" in str(excinfo.value)


class TestFamilyShapes:
    """Cheap sanity that each archetype produces its advertised shape."""

    def test_hotspot_concentrates_accesses(self):
        from collections import Counter

        generator = HotspotPattern(hot=0.05, p=0.95, seed=1)
        trace = generator.generate(INSTRUCTIONS, LLC_BYTES)
        counts = sorted(
            Counter(record.address for record in trace.records).values(),
            reverse=True,
        )
        # The hot set (5% of blocks, 95% of accesses) dominates: the top
        # half of distinct addresses must carry nearly all traffic, far
        # beyond what the uniform family produces (~70%).
        top_half = sum(counts[: max(len(counts) // 2, 1)])
        assert top_half > sum(counts) * 0.85

    def test_bursty_has_idle_gaps(self):
        generator = BurstyPattern(burst=16, idle=300, seed=1)
        trace = generator.generate(INSTRUCTIONS, LLC_BYTES)
        assert trace.instructions > len(trace.records) * 5

    def test_sequential_streams_ascend(self):
        generator = SequentialPattern(streams=1, gap=1, seed=1)
        records = generator.generate(2_000, LLC_BYTES).records
        deltas = [b.address - a.address for a, b in zip(records, records[1:])]
        assert all(delta >= 0 for delta in deltas[: len(deltas) // 2])

    def test_uniform_spreads_accesses(self):
        generator = UniformRandomPattern(footprint=2.0, seed=1)
        records = generator.generate(INSTRUCTIONS, LLC_BYTES).records
        assert len({record.address for record in records}) > len(records) // 4
