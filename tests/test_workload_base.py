"""Tests for the workload-generation infrastructure (TraceBuilder etc.)."""

import pytest

from repro.workloads.base import TraceBuilder, WorkloadGenerator, _stable_hash


class TestTraceBuilder:
    def test_budget_tracking(self):
        builder = TraceBuilder("t", budget=100)
        builder.load(0x1, 0x40, gap=4)
        assert builder.instructions == 5
        assert not builder.exhausted
        for _ in range(30):
            builder.load(0x1, 0x40, gap=4)
        assert builder.exhausted

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            TraceBuilder("t", budget=0)

    def test_store_records_write(self):
        builder = TraceBuilder("t", budget=10)
        builder.store(0x1, 0x80, gap=1)
        assert builder.records[0].is_write

    def test_compute_burst_counts_instructions(self):
        builder = TraceBuilder("t", budget=100)
        builder.load(0x1, 0x40, gap=0)
        builder.compute(50)
        assert builder.instructions == 51
        trace = builder.build()
        assert trace.instructions == 51  # compute bursts survive build()

    def test_compute_rejects_negative(self):
        builder = TraceBuilder("t", budget=10)
        with pytest.raises(ValueError):
            builder.compute(-1)

    def test_build_without_compute_matches_records(self):
        builder = TraceBuilder("t", budget=100)
        builder.load(0x1, 0x40, gap=3)
        builder.load(0x2, 0x80, gap=2)
        trace = builder.build()
        assert trace.instructions == 7


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert _stable_hash("mcf") == _stable_hash("mcf")

    def test_known_value_pinned(self):
        """Pin one value so accidental hash-function changes (which would
        silently reshuffle every PC pool and data region) fail loudly."""
        value = _stable_hash("hmmer")
        assert value == _stable_hash("hmmer")
        assert value != _stable_hash("hmmer ")
        assert 0 <= value < 2**64

    def test_distinct_names_distinct_hashes(self):
        from repro.workloads.suite import ALL_BENCHMARKS

        hashes = {_stable_hash(name) for name in ALL_BENCHMARKS}
        assert len(hashes) == len(ALL_BENCHMARKS)


class TestGeneratorAddressing:
    class Dummy(WorkloadGenerator):
        def generate(self, instructions, llc_bytes):
            raise NotImplementedError

    def test_data_regions_disjoint_within_generator(self):
        generator = self.Dummy("x")
        r0 = generator.data_region(0)
        r1 = generator.data_region(1)
        assert r1 - r0 == 1 << 30

    def test_data_regions_offset_differs_across_benchmarks(self):
        a = self.Dummy("alpha").data_region(0)
        b = self.Dummy("beta").data_region(0)
        # The per-benchmark offset lives in bits 20..29.
        assert (a >> 20) & 0x3FF != (b >> 20) & 0x3FF or a == b

    def test_pc_pools_spaced(self):
        generator = self.Dummy("x")
        assert generator.pc(1) - generator.pc(0) == 4

    def test_region_blocks(self):
        assert WorkloadGenerator.region_blocks(1024 * 64, 1.0) == 1024
        assert WorkloadGenerator.region_blocks(64, 0.001) == 1  # floor of 1
