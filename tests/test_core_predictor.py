"""Focused tests for SamplingDeadBlockPredictor internals."""

from repro.cache import Cache, CacheAccess, CacheGeometry
from repro.core import DBRBPolicy, SamplingDeadBlockPredictor
from repro.replacement import LRUPolicy


def build(sets=64, assoc=4, **kwargs):
    geometry = CacheGeometry(sets * assoc * 64, assoc, 64)
    predictor = SamplingDeadBlockPredictor(**kwargs)
    policy = DBRBPolicy(LRUPolicy(), predictor)
    cache = Cache(geometry, policy)
    return geometry, cache, predictor


class TestSetSampling:
    def test_only_sampled_sets_touch_the_sampler(self):
        geometry, cache, predictor = build(sets=64, sampler_sets=32, sampler_assoc=4)
        assert predictor.sampler.interval == 2
        # Access an unsampled set (odd index): sampler must stay silent.
        cache.access(CacheAccess(address=1 * 64, pc=0x1, seq=0))
        assert predictor.sampler.accesses == 0
        # Access a sampled set (even index).
        cache.access(CacheAccess(address=2 * 64, pc=0x1, seq=1))
        assert predictor.sampler.accesses == 1

    def test_learning_generalizes_to_unsampled_sets(self):
        """Train a dead PC exclusively through sampled sets, then check an
        unsampled set's fill bypasses -- the sampling thesis itself."""
        geometry, cache, predictor = build(sets=64, sampler_sets=32, sampler_assoc=2)
        dead_pc = 0x666
        seq = 0
        # Stream distinct tags through sampled set 0 to train "dead".
        for i in range(8):
            address = i * 64 * 64  # always set 0, fresh tags
            cache.access(CacheAccess(address=address, pc=dead_pc, seq=seq))
            seq += 1
        assert predictor._predict(dead_pc)
        # A fill to unsampled set 1 with the dead PC must bypass.
        before = cache.stats.bypasses
        cache.access(CacheAccess(address=1 * 64, pc=dead_pc, seq=seq))
        assert cache.stats.bypasses == before + 1

    def test_bypassed_accesses_still_train_the_sampler(self):
        """Section V-B: tags never bypass the sampler, so a dead-predicted
        PC keeps being re-evaluated and can recover."""
        geometry, cache, predictor = build(sets=64, sampler_sets=32, sampler_assoc=2)
        pc = 0x777
        seq = 0
        for i in range(8):
            cache.access(CacheAccess(address=i * 64 * 64, pc=pc, seq=seq))
            seq += 1
        assert predictor._predict(pc)
        accesses_before = predictor.sampler.accesses
        # This access bypasses the LLC but must still enter the sampler.
        cache.access(CacheAccess(address=99 * 64 * 64, pc=pc, seq=seq))
        seq += 1
        assert predictor.sampler.accesses == accesses_before + 1
        # Re-touching the same block proves the PC live again; repeated
        # touches pull the confidence back below threshold.
        for _ in range(6):
            cache.access(CacheAccess(address=99 * 64 * 64, pc=pc, seq=seq))
            seq += 1
        assert not predictor._predict(pc)

    def test_signature_is_15_bits(self):
        _, _, predictor = build()
        for pc in (0x0, 0xDEADBEEF, 2**48 - 1):
            assert 0 <= predictor._signature(pc) < (1 << 15)


class TestConfigurationKnobs:
    def test_threshold_override(self):
        _, _, strict = build(threshold=9)
        assert strict.tables.threshold == 9
        _, _, loose = build(threshold=3)
        assert loose.tables.threshold == 3

    def test_single_table_is_four_times_larger(self):
        _, _, skewed = build(skewed=True)
        _, _, single = build(skewed=False)
        assert skewed.tables.num_tables == 3
        assert single.tables.num_tables == 1
        assert len(single.tables.tables[0]) == 4 * len(skewed.tables.tables[0])

    def test_storage_paper_figures(self):
        """The simulated predictor's own storage accounting matches the
        analytic model's structure sizes."""
        _, _, predictor = build(sampler_sets=32, sampler_assoc=12)
        assert predictor.tables.storage_bits == 3 * 4096 * 2
        assert predictor.sampler.entry_bits == 36

    def test_no_sampler_mode_keeps_metadata_in_blocks(self):
        geometry, cache, predictor = build(use_sampler=False)
        cache.access(CacheAccess(address=0, pc=0x5, seq=0))
        (_, _, block), = cache.resident_blocks()
        assert "sdbp_last_pc" in block.meta

    def test_sampler_mode_keeps_blocks_clean(self):
        """The headline claim: one bit per block, nothing else."""
        geometry, cache, predictor = build(use_sampler=True)
        cache.access(CacheAccess(address=0, pc=0x5, seq=0))
        (_, _, block), = cache.resident_blocks()
        assert block.meta == {}
