"""Tests for the technique registry, runner, and experiment functions.

Experiment functions are exercised end-to-end on a tiny configuration
(64KB LLC, short traces) so the full suite stays fast; the benchmark
scripts run the real configuration.
"""

import pytest

from repro.harness import (
    ExperimentConfig,
    MULTICORE_LRU_TECHNIQUES,
    RANDOM_DEFAULT_TECHNIQUES,
    SINGLE_THREAD_TECHNIQUES,
    TECHNIQUES,
    WorkloadCache,
    accuracy_experiment,
    characterization_table,
    efficiency_experiment,
    format_table,
    multicore_comparison,
    single_thread_comparison,
)
from repro.harness.experiments import ablation_experiment


@pytest.fixture(scope="module")
def small_cache():
    config = ExperimentConfig(scale=32, instructions=40_000)
    return WorkloadCache(config)


class TestTechniqueRegistry:
    def test_table_v_techniques_present(self):
        for key in (
            "sampler", "tdbp", "cdbp", "dip", "rrip", "tadip",
            "random", "random_sampler", "random_cdbp", "optimal", "lru",
        ):
            assert key in TECHNIQUES

    def test_figure_axes(self):
        assert SINGLE_THREAD_TECHNIQUES == (
            "tdbp", "cdbp", "dip", "rrip", "sampler", "optimal"
        )
        assert RANDOM_DEFAULT_TECHNIQUES == (
            "random", "random_cdbp", "random_sampler"
        )
        assert "tadip" in MULTICORE_LRU_TECHNIQUES

    def test_optimal_timing_not_meaningful(self):
        assert not TECHNIQUES["optimal"].timing_meaningful
        assert TECHNIQUES["sampler"].timing_meaningful

    def test_every_technique_builds(self):
        from repro.cache import Cache, CacheGeometry

        geometry = CacheGeometry(64 * 16 * 64, 16, 64)
        for technique in TECHNIQUES.values():
            policy = technique.build(geometry, [], num_cores=4)
            Cache(geometry, policy)  # binds without error


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.scale == 8
        assert config.machine().llc.size_bytes == 256 * 1024

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "16")
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "1234")
        config = ExperimentConfig.from_env()
        assert config.scale == 16
        assert config.instructions == 1234

    def test_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        with pytest.raises(ValueError):
            ExperimentConfig.from_env()

    def test_from_env_rejects_nonpositive(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0")
        with pytest.raises(ValueError):
            ExperimentConfig.from_env()

    def test_describe_mentions_scale(self):
        assert "1/8" in ExperimentConfig().describe()


class TestWorkloadCache:
    def test_filtered_is_memoized(self, small_cache):
        first = small_cache.filtered("hmmer")
        second = small_cache.filtered("hmmer")
        assert first is second

    def test_clear_drops_cache(self):
        cache = WorkloadCache(ExperimentConfig(scale=32, instructions=20_000))
        first = cache.filtered("gamess")
        cache.clear()
        assert cache.filtered("gamess") is not first


class TestSingleThreadComparison:
    @pytest.fixture(scope="class")
    def comparison(self, small_cache):
        return single_thread_comparison(
            small_cache,
            technique_keys=("sampler", "optimal"),
            benchmarks=("hmmer", "libquantum"),
        )

    def test_structure(self, comparison):
        assert set(comparison.results) == {"hmmer", "libquantum"}
        assert set(comparison.results["hmmer"]) == {"sampler", "optimal"}

    def test_optimal_never_worse_than_lru(self, comparison):
        for benchmark in comparison.benchmarks:
            assert comparison.normalized_mpki(benchmark, "optimal") <= 1.0 + 1e-9

    def test_sampler_not_worse_than_optimal(self, comparison):
        for benchmark in comparison.benchmarks:
            assert comparison.normalized_mpki(
                benchmark, "optimal"
            ) <= comparison.normalized_mpki(benchmark, "sampler") + 1e-9

    def test_rows_have_amean_and_gmean(self, comparison):
        mpki_rows = comparison.mpki_rows()
        assert mpki_rows[-1][0] == "amean"
        speedup_rows = comparison.speedup_rows(technique_keys=("sampler",))
        assert speedup_rows[-1][0] == "gmean"

    def test_speedup_positive(self, comparison):
        assert comparison.speedup_gmean("sampler") > 0


class TestAccuracyExperiment:
    def test_rates_in_range(self, small_cache):
        result = accuracy_experiment(small_cache, benchmarks=("hmmer",))
        for predictor in result.predictors:
            assert 0.0 <= result.mean_coverage(predictor) <= 1.0
            assert 0.0 <= result.mean_false_positive(predictor) <= 1.0

    def test_false_positives_bounded_by_coverage(self, small_cache):
        result = accuracy_experiment(small_cache, benchmarks=("hmmer",))
        for predictor in result.predictors:
            assert result.mean_false_positive(predictor) <= (
                result.mean_coverage(predictor) + 1e-9
            )


class TestEfficiencyExperiment:
    def test_sampler_beats_lru_efficiency(self, small_cache):
        result = efficiency_experiment(small_cache, benchmark="hmmer")
        assert 0.0 <= result.lru_efficiency <= 1.0
        assert result.sampler_efficiency > result.lru_efficiency

    def test_matrices_match_geometry(self, small_cache):
        result = efficiency_experiment(small_cache, benchmark="hmmer")
        machine = small_cache.machine
        assert len(result.lru_matrix) == machine.llc.num_sets
        assert len(result.lru_matrix[0]) == machine.llc.associativity


class TestAblationExperiment:
    def test_all_variants_reported(self, small_cache):
        rows = ablation_experiment(small_cache, benchmarks=("hmmer",))
        labels = [label for label, _, _ in rows]
        assert labels[0] == "DBRB alone"
        assert labels[-1] == "DBRB+sampler+3 tables+12-way"
        assert len(rows) == 6
        for _, measured, paper in rows:
            assert measured > 0
            assert paper > 1.0


class TestMulticoreComparison:
    @pytest.fixture(scope="class")
    def comparison(self, small_cache):
        return multicore_comparison(
            small_cache, technique_keys=("sampler",), mixes=("mix1",)
        )

    def test_structure(self, comparison):
        assert comparison.mixes == ("mix1",)
        assert "sampler" in comparison.results["mix1"]

    def test_normalized_speedup_positive(self, comparison):
        assert comparison.normalized_weighted_speedup("mix1", "sampler") > 0

    def test_rows_end_with_gmean(self, comparison):
        assert comparison.speedup_rows()[-1][0] == "gmean"


class TestCharacterization:
    def test_rows_for_requested_benchmarks(self, small_cache):
        rows = characterization_table(small_cache, benchmarks=("hmmer", "gamess"))
        assert len(rows) == 2
        names = [row[0] for row in rows]
        assert names == ["hmmer", "gamess"]
        # hmmer is in the subset, gamess is not.
        assert rows[0][4] == "yes"
        assert rows[1][4] == ""

    def test_min_mpki_not_above_lru(self, small_cache):
        rows = characterization_table(small_cache, benchmarks=("hmmer",))
        _, lru_mpki, min_mpki, ipc, _ = rows[0]
        assert min_mpki <= lru_mpki + 1e-9
        assert ipc > 0


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 2.25]])
        lines = text.split("\n")
        assert "name" in lines[0]
        assert lines[2].startswith("a ")

    def test_none_renders_dash(self):
        text = format_table(["n", "v"], [["x", None]])
        assert "-" in text.split("\n")[-1]

    def test_title(self):
        text = format_table(["n"], [["x"]], title="Table 1")
        assert text.startswith("Table 1")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])
