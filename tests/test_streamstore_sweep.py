"""Golden bit-identity for the compiled workload store at sweep level.

The store and the shared-memory fan-out are pure transport: every mode
-- store off, store cold, store warm, parallel, parallel + shm -- must
produce byte-for-byte the same hit/miss counters, per-access hit lists,
and IPC as a plain serial sweep that prepares every workload from
scratch.  These tests pin that, plus the provenance trail (manifest
``stream_store`` summary and per-cell hit/miss counters) that proves the
warm path was actually taken.
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import single_thread_comparison
from repro.harness.parallel import parallel_single_thread_comparison
from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.sim.streamstore import StreamStore
from repro.telemetry.manifest import RunManifest

TINY = ExperimentConfig(scale=32, instructions=20_000, seed=3)
BENCHMARKS = ("perlbench", "mcf")
TECHNIQUE_KEYS = ("rrip",)


@pytest.fixture(autouse=True)
def _isolate_store_env(monkeypatch):
    """Keep ambient REPRO_* store knobs out of these tests."""
    for name in ("REPRO_STREAM_CACHE", "REPRO_SHM", "REPRO_STREAM_REQUIRE"):
        monkeypatch.delenv(name, raising=False)


@pytest.fixture(scope="module")
def reference():
    """The golden serial sweep, prepared from scratch with no store."""
    return single_thread_comparison(WorkloadCache(TINY), TECHNIQUE_KEYS, BENCHMARKS)


def assert_bit_identical(reference, comparison):
    for benchmark in BENCHMARKS:
        assert (
            reference.baseline[benchmark].llc_stats.snapshot()
            == comparison.baseline[benchmark].llc_stats.snapshot()
        )
        assert reference.baseline[benchmark].ipc == comparison.baseline[benchmark].ipc
        for key in TECHNIQUE_KEYS:
            mine = reference.results[benchmark][key]
            theirs = comparison.results[benchmark][key]
            assert mine.llc_stats.snapshot() == theirs.llc_stats.snapshot()
            assert mine.llc_hits == theirs.llc_hits
            assert mine.ipc == theirs.ipc


def run_sweep(tmp_path, tag, **kwargs):
    manifest_path = tmp_path / f"{tag}-manifest.json"
    comparison = parallel_single_thread_comparison(
        TINY, TECHNIQUE_KEYS, BENCHMARKS,
        manifest_path=str(manifest_path), **kwargs,
    )
    return comparison, RunManifest.load(str(manifest_path))


def cell_counter(manifest, counter):
    return sum(cell.get(counter, 0) for cell in manifest["cells"].values())


class TestSerialStorePath:
    def test_cold_sweep_populates_store_and_matches(self, reference, tmp_path):
        store = StreamStore(tmp_path / "store")
        comparison, manifest = run_sweep(tmp_path, "cold", jobs=1, stream_cache=store)
        assert_bit_identical(reference, comparison)
        assert len(store) == len(BENCHMARKS)
        summary = manifest["stream_store"]
        assert summary["shared_memory"] is False
        assert summary["misses"] == len(BENCHMARKS)
        assert summary["hits"] == 0

    def test_warm_sweep_loads_without_compiling(
        self, reference, tmp_path, monkeypatch
    ):
        store = StreamStore(tmp_path / "store")
        run_sweep(tmp_path, "prime", jobs=1, stream_cache=store)
        # REPRO_STREAM_REQUIRE turns any cold compile into a hard error,
        # so a passing warm sweep *proves* every workload came off disk.
        monkeypatch.setenv("REPRO_STREAM_REQUIRE", "1")
        comparison, manifest = run_sweep(tmp_path, "warm", jobs=1, stream_cache=store)
        assert_bit_identical(reference, comparison)
        summary = manifest["stream_store"]
        assert summary["hits"] == len(BENCHMARKS)
        assert summary["misses"] == 0

    def test_store_off_is_unchanged(self, reference, tmp_path):
        comparison, manifest = run_sweep(tmp_path, "off", jobs=1)
        assert_bit_identical(reference, comparison)
        assert manifest["stream_store"] is None


@pytest.mark.faults
class TestParallelStorePath:
    """Real spawn pools; marked ``faults`` for the hard per-test deadline."""

    def test_parallel_store_bit_identical(self, reference, tmp_path):
        store = StreamStore(tmp_path / "store")
        comparison, manifest = run_sweep(
            tmp_path, "par", jobs=2, stream_cache=store
        )
        assert_bit_identical(reference, comparison)
        summary = manifest["stream_store"]
        assert summary["shared_memory"] is False
        assert summary["workloads"] == sorted(BENCHMARKS)
        # The parent compiled both workloads cold; the workers then read
        # them back from the store and never compiled anything.
        assert summary["misses"] == len(BENCHMARKS)
        assert cell_counter(manifest, "store_misses") == 0
        assert cell_counter(manifest, "store_hits") >= 1
        for cell in manifest["cells"].values():
            assert "store_hits" in cell and "store_misses" in cell

    def test_parallel_shm_attach_without_recompile(
        self, reference, tmp_path, monkeypatch
    ):
        store = StreamStore(tmp_path / "store")
        run_sweep(tmp_path, "prime", jobs=1, stream_cache=store)
        # Workers inherit the environment, so REPRO_STREAM_REQUIRE makes
        # any worker-side build_trace/prepare abort its cell: completion
        # proves every worker attached the parent's segments instead.
        monkeypatch.setenv("REPRO_STREAM_REQUIRE", "1")
        comparison, manifest = run_sweep(
            tmp_path, "shm", jobs=2, stream_cache=store, shared_memory=True
        )
        assert_bit_identical(reference, comparison)
        summary = manifest["stream_store"]
        assert summary["shared_memory"] is True
        assert summary["misses"] == 0  # parent loaded the primed store
        assert cell_counter(manifest, "store_misses") == 0
        assert cell_counter(manifest, "store_hits") >= len(BENCHMARKS)

    def test_shm_alone_without_disk_store(self, reference, tmp_path):
        comparison, manifest = run_sweep(
            tmp_path, "shm-only", jobs=2, shared_memory=True
        )
        assert_bit_identical(reference, comparison)
        summary = manifest["stream_store"]
        assert summary["root"] is None
        assert summary["shared_memory"] is True
        assert cell_counter(manifest, "store_misses") == 0
