"""Unit tests for repro.utils.hashing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.hashing import fold_xor, hash_combine, mix64, skewed_hash


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_fits_64_bits(self):
        assert 0 <= mix64(2**64 - 1) < 2**64

    def test_bijective_on_sample(self):
        # mix64 is a bijection; spot-check no collisions on a dense sample.
        outputs = {mix64(value) for value in range(10_000)}
        assert len(outputs) == 10_000

    def test_changes_input(self):
        # Not the identity on interesting values.
        assert mix64(1) != 1
        assert mix64(0xDEAD) != 0xDEAD


class TestFoldXor:
    def test_narrow_value_unchanged(self):
        assert fold_xor(0b101, 15) == 0b101

    def test_two_chunk_fold(self):
        value = (0b1100 << 4) | 0b1010
        assert fold_xor(value, 4) == 0b0110

    def test_zero(self):
        assert fold_xor(0, 15) == 0

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            fold_xor(5, 0)

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(1, 32))
    def test_output_in_range(self, value, width):
        assert 0 <= fold_xor(value, width) < (1 << width)


class TestHashCombine:
    def test_order_matters(self):
        assert hash_combine(1, 2) != hash_combine(2, 1)

    def test_deterministic(self):
        assert hash_combine(77, 88) == hash_combine(77, 88)


class TestSkewedHash:
    def test_output_in_range(self):
        for signature in range(0, 2**15, 97):
            for table in range(3):
                index = skewed_hash(signature, table, index_bits=12)
                assert 0 <= index < 4096

    def test_tables_decorrelated(self):
        """Two signatures colliding in table 0 should mostly not collide in
        tables 1 and 2 -- that is the whole point of the skewed organization
        (paper Section III-E)."""
        from collections import defaultdict

        buckets = defaultdict(list)
        signatures = range(0, 2**15, 7)
        for signature in signatures:
            buckets[skewed_hash(signature, 0, 12)].append(signature)
        colliding_pairs = []
        for group in buckets.values():
            if len(group) >= 2:
                colliding_pairs.append((group[0], group[1]))
        assert colliding_pairs, "sample too small to produce collisions"
        still_colliding = sum(
            1
            for a, b in colliding_pairs
            if skewed_hash(a, 1, 12) == skewed_hash(b, 1, 12)
            and skewed_hash(a, 2, 12) == skewed_hash(b, 2, 12)
        )
        # A triple collision should be roughly 1/4096^2; zero expected here.
        assert still_colliding == 0

    def test_distinct_tables_give_distinct_streams(self):
        same = sum(
            1
            for signature in range(2048)
            if skewed_hash(signature, 0, 12) == skewed_hash(signature, 1, 12)
        )
        # Random agreement would be ~2048/4096 = 0.5 expected hits.
        assert same < 20

    def test_rejects_negative_table(self):
        with pytest.raises(ValueError):
            skewed_hash(1, -1, 12)

    def test_spread_is_reasonably_uniform(self):
        counts = [0] * 4096
        for signature in range(2**15):
            counts[skewed_hash(signature, 0, 12)] += 1
        # 32768 signatures over 4096 buckets = 8 per bucket on average.  A
        # truly random spread leaves ~1.4 buckets empty (e^-8 each), so allow
        # a handful but no systematic holes.
        assert max(counts) < 40
        assert sum(1 for count in counts if count == 0) <= 8
