"""Tests for the storage (Table I) and power (Table II) models."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.power import (
    CactiLite,
    SRAMArray,
    counting_storage,
    predictor_power_table,
    reftrace_storage,
    sampler_storage,
    storage_table,
)
from repro.power.cacti import LLC_DYNAMIC_WATTS, LLC_LEAKAGE_WATTS


def paper_llc():
    return CacheGeometry(2 * 1024 * 1024, 16, 64)


class TestStorageTableI:
    """Table I of the paper, reproduced to the kilobyte."""

    def test_reftrace_is_72kb(self):
        breakdown = reftrace_storage(paper_llc())
        assert breakdown.structure_bits == 8 * 1024 * 8       # 8KB table
        assert breakdown.metadata_bits == 16 * 32 * 1024      # 64KB metadata
        assert breakdown.total_kbytes == pytest.approx(72.0)

    def test_counting_is_108kb(self):
        breakdown = counting_storage(paper_llc())
        assert breakdown.structure_bits == 40 * 1024 * 8      # 40KB table
        assert breakdown.metadata_bits == 17 * 32 * 1024      # 68KB metadata
        assert breakdown.total_kbytes == pytest.approx(108.0)

    def test_sampler_is_13_75kb(self):
        breakdown = sampler_storage(paper_llc())
        assert breakdown.total_kbytes == pytest.approx(13.75)

    def test_sampler_fraction_under_one_percent(self):
        """Paper: 'less than 1% of the capacity of a 2MB LLC'."""
        breakdown = sampler_storage(paper_llc())
        assert breakdown.fraction_of_cache(paper_llc()) < 0.01

    def test_paper_percentages(self):
        """Paper: reftrace 3.5%, counting 5.3% of LLC capacity."""
        geometry = paper_llc()
        assert reftrace_storage(geometry).fraction_of_cache(geometry) == pytest.approx(
            0.035, abs=0.002
        )
        assert counting_storage(geometry).fraction_of_cache(geometry) == pytest.approx(
            0.053, abs=0.002
        )

    def test_storage_table_rows(self):
        rows = storage_table(paper_llc())
        assert [row.predictor for row in rows] == ["reftrace", "counting", "sampler"]

    def test_sampler_32_set_variant(self):
        """The 32-set arithmetic (the paper's *stated* design point)."""
        breakdown = sampler_storage(paper_llc(), sampler_sets=32)
        # 3KB tables + 32*12*36 bits + 4KB of dead bits.
        expected_bits = 3 * 1024 * 8 + 32 * 12 * 36 + 32 * 1024
        assert breakdown.total_bits == expected_bits

    def test_metadata_scales_with_cache(self):
        small = CacheGeometry(256 * 1024, 16, 64)
        assert reftrace_storage(small).metadata_bits == 16 * 4096


class TestPowerTableII:
    """Table II shape: the paper's percentages and ratios."""

    @pytest.fixture(scope="class")
    def reports(self):
        rows = predictor_power_table()
        return {row.predictor: row for row in rows}

    def test_sampler_dynamic_is_3_percent_of_llc(self, reports):
        assert reports["sampler"].llc_dynamic_percent == pytest.approx(3.1, abs=0.4)

    def test_counting_dynamic_is_11_percent_of_llc(self, reports):
        assert reports["counting"].llc_dynamic_percent == pytest.approx(11.0, abs=1.5)

    def test_sampler_leakage_is_1_2_percent_of_llc(self, reports):
        assert reports["sampler"].llc_leakage_percent == pytest.approx(1.2, abs=0.2)

    def test_reftrace_leakage_is_2_9_percent_of_llc(self, reports):
        assert reports["reftrace"].llc_leakage_percent == pytest.approx(2.9, abs=0.3)

    def test_counting_leakage_is_4_7_percent_of_llc(self, reports):
        assert reports["counting"].llc_leakage_percent == pytest.approx(4.7, abs=0.8)

    def test_sampler_dynamic_under_60_percent_of_reftrace(self, reports):
        """Paper: sampler dynamic is 57% of reftrace's."""
        ratio = reports["sampler"].total_dynamic / reports["reftrace"].total_dynamic
        assert ratio == pytest.approx(0.57, abs=0.08)

    def test_sampler_dynamic_under_30_percent_of_counting(self, reports):
        """Paper: sampler dynamic is 28% of counting's."""
        ratio = reports["sampler"].total_dynamic / reports["counting"].total_dynamic
        assert ratio == pytest.approx(0.28, abs=0.05)

    def test_sampler_leakage_40_percent_of_reftrace(self, reports):
        ratio = reports["sampler"].total_leakage / reports["reftrace"].total_leakage
        assert ratio == pytest.approx(0.40, abs=0.08)

    def test_totals_are_component_sums(self, reports):
        for report in reports.values():
            assert report.total_leakage == pytest.approx(
                report.structure_leakage + report.metadata_leakage
            )
            assert report.total_dynamic == pytest.approx(
                report.structure_dynamic + report.metadata_dynamic
            )


class TestCactiLite:
    def test_leakage_proportional_to_bits(self):
        model = CactiLite()
        small = model.leakage_watts(SRAMArray("a", bits=1000))
        large = model.leakage_watts(SRAMArray("b", bits=2000))
        assert large == pytest.approx(2 * small)

    def test_tag_arrays_leak_more(self):
        model = CactiLite()
        ram = model.leakage_watts(SRAMArray("a", bits=1000))
        tag = model.leakage_watts(SRAMArray("b", bits=1000, tag_array=True))
        assert tag > ram

    def test_dynamic_grows_with_size(self):
        model = CactiLite()
        small = model.dynamic_watts(SRAMArray("a", bits=8 * 1024 * 8))
        large = model.dynamic_watts(SRAMArray("b", bits=32 * 1024 * 8))
        assert large > small

    def test_banking_is_cheaper_than_monolith(self):
        """Three small banks cost less than one array of the same total."""
        model = CactiLite()
        banked = model.dynamic_watts(SRAMArray("a", bits=3 * 4096 * 2, banks=3))
        monolith = model.dynamic_watts(SRAMArray("b", bits=3 * 4096 * 2, banks=1))
        assert banked < monolith * 3

    def test_metadata_bits_add_dynamic(self):
        model = CactiLite()
        without = model.dynamic_watts(SRAMArray("a", bits=1024))
        with_meta = model.dynamic_watts(SRAMArray("a", bits=1024, metadata_bits=16))
        assert with_meta > without

    def test_rejects_zero_bank_size(self):
        from repro.power.cacti import _interpolate_dynamic

        with pytest.raises(ValueError):
            _interpolate_dynamic(0)

    def test_llc_fractions(self):
        model = CactiLite()
        assert model.llc_fraction_dynamic(LLC_DYNAMIC_WATTS) == pytest.approx(1.0)
        assert model.llc_fraction_leakage(LLC_LEAKAGE_WATTS) == pytest.approx(1.0)
