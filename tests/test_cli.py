"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Sampling Dead Block Prediction" in out
        assert "sampler" in out
        assert "mix10" in out

    def test_storage(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "13.75" in out

    def test_power(self, capsys):
        assert main(["power"]) == 0
        out = capsys.readouterr().out
        assert "sampler" in out

    def test_run_single_benchmark(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "32")
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "30000")
        assert main(["run", "hmmer", "sampler"]) == 0
        out = capsys.readouterr().out
        assert "normalized to LRU" in out
        assert "hmmer" in out

    def test_profile(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "32")
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "20000")
        assert main(["profile", "hmmer"]) == 0
        out = capsys.readouterr().out
        assert "reuse profile: hmmer" in out
        assert "cold" in out

    def test_profile_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["profile", "nope"])

    def test_run_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["run", "not_a_benchmark"])

    def test_run_rejects_unknown_technique(self):
        with pytest.raises(SystemExit):
            main(["run", "hmmer", "not_a_technique"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
