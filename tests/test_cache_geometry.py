"""Unit tests for repro.cache.geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry


def paper_llc() -> CacheGeometry:
    """The paper's single-core LLC: 2MB, 16-way, 64B blocks."""
    return CacheGeometry(size_bytes=2 * 1024 * 1024, associativity=16, block_bytes=64)


class TestDerivedFields:
    def test_paper_llc_has_2048_sets(self):
        geometry = paper_llc()
        assert geometry.num_sets == 2048  # stated explicitly in Section III-A
        assert geometry.offset_bits == 6
        assert geometry.index_bits == 11
        assert geometry.num_blocks == 32768  # "32K blocks" in Table I

    def test_paper_l1(self):
        geometry = CacheGeometry(32 * 1024, 8, 64)
        assert geometry.num_sets == 64

    def test_paper_l2(self):
        geometry = CacheGeometry(256 * 1024, 8, 64)
        assert geometry.num_sets == 512

    def test_quad_core_llc(self):
        geometry = CacheGeometry(8 * 1024 * 1024, 16, 64)
        assert geometry.num_sets == 8192


class TestValidation:
    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(0, 4, 64)

    def test_rejects_zero_assoc(self):
        with pytest.raises(ValueError):
            CacheGeometry(1024, 0, 64)

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ValueError):
            CacheGeometry(1024, 4, 48)

    def test_rejects_indivisible_assoc(self):
        # 1024B / 64B = 16 blocks; 16 % 3 != 0.
        with pytest.raises(ValueError):
            CacheGeometry(1024, 3, 64)

    def test_rejects_non_power_of_two_sets(self):
        # 3KB / 64B = 48 blocks / 4 ways = 12 sets: not a power of two.
        with pytest.raises(ValueError):
            CacheGeometry(3 * 1024, 4, 64)


class TestAddressDecomposition:
    def test_offset_does_not_change_block(self):
        geometry = paper_llc()
        base = 0x12345 * 64
        for offset in (0, 1, 63):
            assert geometry.block_address(base + offset) == 0x12345
            assert geometry.set_index(base + offset) == geometry.set_index(base)
            assert geometry.tag(base + offset) == geometry.tag(base)

    def test_adjacent_blocks_hit_adjacent_sets(self):
        geometry = paper_llc()
        index = geometry.set_index(0)
        assert geometry.set_index(64) == (index + 1) % geometry.num_sets

    def test_rebuild_address_round_trip(self):
        geometry = paper_llc()
        address = 0xDEADBEEF & ~0x3F
        rebuilt = geometry.rebuild_address(
            geometry.tag(address), geometry.set_index(address)
        )
        assert rebuilt == address

    def test_rebuild_rejects_bad_set(self):
        with pytest.raises(ValueError):
            paper_llc().rebuild_address(1, 99999)

    @given(st.integers(min_value=0, max_value=2**48 - 1))
    def test_decomposition_partitions_address(self, address):
        geometry = paper_llc()
        reconstructed = (
            (geometry.tag(address) << geometry.index_bits | geometry.set_index(address))
            << geometry.offset_bits
        ) | (address & 0x3F)
        assert reconstructed == address


class TestScaling:
    def test_scaled_preserves_assoc_and_block(self):
        scaled = paper_llc().scaled(8)
        assert scaled.size_bytes == 256 * 1024
        assert scaled.associativity == 16
        assert scaled.block_bytes == 64
        assert scaled.num_sets == 256

    def test_scale_by_one_is_identity(self):
        assert paper_llc().scaled(1) == paper_llc()

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            paper_llc().scaled(0)


class TestDescribe:
    def test_megabyte_cache(self):
        assert paper_llc().describe() == "2MB 16-way 64B"

    def test_kilobyte_cache(self):
        assert CacheGeometry(32 * 1024, 8, 64).describe() == "32KB 8-way 64B"
