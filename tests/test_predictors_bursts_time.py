"""Tests for the bursts filter and the time-based predictor."""

import pytest

from repro.cache import Cache, CacheAccess, CacheGeometry
from repro.core import DBRBPolicy
from repro.predictors import BurstFilter, RefTracePredictor, TimeBasedPredictor
from repro.replacement import LRUPolicy


def small_cache(predictor, sets=2, assoc=2, bypass=False):
    geometry = CacheGeometry(size_bytes=sets * assoc * 64, associativity=assoc)
    policy = DBRBPolicy(LRUPolicy(), predictor, enable_bypass=bypass)
    return Cache(geometry, policy)


class TestBurstFilter:
    def test_repeated_touches_absorbed(self):
        """Consecutive accesses to the same MRU block are one burst: the
        inner predictor must see far fewer events than the raw stream."""
        inner = RefTracePredictor()
        predictor = BurstFilter(inner)
        cache = small_cache(predictor, sets=1, assoc=2)
        seq = 0
        for _ in range(10):
            for _ in range(8):  # 8 consecutive touches = 1 burst
                cache.access(CacheAccess(address=0, pc=0x5, seq=seq)); seq += 1
            cache.access(CacheAccess(address=64, pc=0x6, seq=seq)); seq += 1
        assert predictor.raw_events > 3 * predictor.burst_events

    def test_burst_boundary_on_other_block(self):
        inner = RefTracePredictor()
        predictor = BurstFilter(inner)
        cache = small_cache(predictor, sets=1, assoc=2)
        cache.access(CacheAccess(address=0, pc=0x5, seq=0))
        assert predictor.burst_events == 0  # burst on block 0 still open
        cache.access(CacheAccess(address=64, pc=0x6, seq=1))
        assert predictor.burst_events == 1  # block 0's burst closed

    def test_different_sets_have_independent_bursts(self):
        inner = RefTracePredictor()
        predictor = BurstFilter(inner)
        cache = small_cache(predictor, sets=2, assoc=2)
        cache.access(CacheAccess(address=0, pc=0x5, seq=0))     # set 0
        cache.access(CacheAccess(address=64, pc=0x6, seq=1))    # set 1
        # Neither burst closed: the blocks are in different sets.
        assert predictor.burst_events == 0

    def test_eviction_flushes_open_burst(self):
        inner = RefTracePredictor()
        predictor = BurstFilter(inner)
        cache = small_cache(predictor, sets=1, assoc=1)
        cache.access(CacheAccess(address=0, pc=0x5, seq=0))
        cache.access(CacheAccess(address=64, pc=0x6, seq=1))  # evicts block 0
        # Block 0's (fill) burst was flushed before its eviction trained.
        signature = inner._initial_signature(0x5)
        assert inner.table[signature] == 1

    def test_bursting_block_never_dead(self):
        inner = RefTracePredictor()
        predictor = BurstFilter(inner)
        cache = small_cache(predictor, sets=1, assoc=2)
        cache.access(CacheAccess(address=0, pc=0x5, seq=0))
        assert not predictor.is_dead_now(0, cache.find(0, 0), now=1)

    def test_llc_bursts_are_mostly_length_one(self):
        """Paper Section II-A.3: at the LLC (post-L1 filtering) bursts
        degenerate -- with no consecutive re-touches, burst count equals
        raw access count and the filter buys nothing."""
        inner = RefTracePredictor()
        predictor = BurstFilter(inner)
        cache = small_cache(predictor, sets=1, assoc=2)
        seq = 0
        for i in range(50):  # alternating blocks: every access ends a burst
            cache.access(CacheAccess(address=(i % 2) * 64, pc=0x5, seq=seq))
            seq += 1
        assert predictor.burst_events >= predictor.raw_events - 2


class TestTimeBasedPredictor:
    def test_rejects_bad_multiplier(self):
        with pytest.raises(ValueError):
            TimeBasedPredictor(multiplier=0)

    def test_block_dead_after_twice_live_time(self):
        predictor = TimeBasedPredictor(multiplier=2)
        cache = small_cache(predictor, sets=1, assoc=2)
        # Generation 1: block 0 lives for 10 sequence units.
        cache.access(CacheAccess(address=0, pc=0x5, seq=0))
        cache.access(CacheAccess(address=0, pc=0x5, seq=10))
        cache.access(CacheAccess(address=64, pc=0x6, seq=11))
        cache.access(CacheAccess(address=128, pc=0x7, seq=12))  # evicts 0
        assert predictor.live_times[predictor._context(0x5)] == 10
        # Generation 2: refill, then idle past 2x10.
        cache.access(CacheAccess(address=0, pc=0x5, seq=13))
        way = cache.find(0, 0)
        assert not predictor.is_dead_now(0, way, now=20)
        assert predictor.is_dead_now(0, way, now=40)

    def test_live_time_smoothing(self):
        predictor = TimeBasedPredictor()
        cache = small_cache(predictor, sets=1, assoc=1)
        # Gen 1 live time 10; gen 2 live time 30 -> smoothed (10+30)/2 = 20.
        cache.access(CacheAccess(address=0, pc=0x5, seq=0))
        cache.access(CacheAccess(address=0, pc=0x5, seq=10))
        cache.access(CacheAccess(address=64, pc=0x6, seq=11))
        cache.access(CacheAccess(address=0, pc=0x5, seq=12))
        cache.access(CacheAccess(address=0, pc=0x5, seq=42))
        cache.access(CacheAccess(address=64, pc=0x6, seq=43))
        assert predictor.live_times[predictor._context(0x5)] == 20

    def test_reference_counting_variant(self):
        predictor = TimeBasedPredictor(count_references=True, multiplier=2)
        cache = small_cache(predictor, sets=1, assoc=2)
        seq = 0
        # Block 0: touched, then 2 other references, touched again (live
        # span of 3 set references), then evicted.
        cache.access(CacheAccess(address=0, pc=0x5, seq=seq)); seq += 1
        cache.access(CacheAccess(address=64, pc=0x6, seq=seq)); seq += 1
        cache.access(CacheAccess(address=64, pc=0x6, seq=seq)); seq += 1
        cache.access(CacheAccess(address=0, pc=0x5, seq=seq)); seq += 1
        cache.access(CacheAccess(address=128, pc=0x7, seq=seq)); seq += 1  # evicts 64
        cache.access(CacheAccess(address=192, pc=0x8, seq=seq)); seq += 1  # evicts 0
        assert predictor.live_times[predictor._context(0x5)] == 3
        # Refill and idle in reference counts.
        cache.access(CacheAccess(address=0, pc=0x5, seq=seq)); seq += 1
        way = cache.find(0, 0)
        for _ in range(10):
            cache.access(CacheAccess(address=64, pc=0x6, seq=seq)); seq += 1
        assert predictor.is_dead_now(0, way, now=seq)

    def test_untrained_block_not_dead(self):
        predictor = TimeBasedPredictor()
        cache = small_cache(predictor, sets=1, assoc=2)
        cache.access(CacheAccess(address=0, pc=0x5, seq=0))
        assert not predictor.is_dead_now(0, cache.find(0, 0), now=1)
