"""Tests for BIP, DIP, and TADIP insertion policies."""

import pytest

from repro.cache import Cache, CacheAccess
from repro.replacement import BIPPolicy, DIPPolicy, LRUPolicy, TADIPPolicy

from tests.conftest import replay, tiny_geometry


def thrash_pattern(working_set: int, rounds: int):
    """A cyclic scan over ``working_set`` distinct blocks, repeated."""
    return list(range(working_set)) * rounds


class TestBIP:
    def test_mostly_inserts_at_lru(self):
        geometry = tiny_geometry(sets=1, assoc=4)
        cache = Cache(geometry, BIPPolicy(epsilon_inverse=1000))
        # Fill the set, then touch a scanning stream: with LRU insertion the
        # resident working set {0..3} would be fully destroyed; with BIP the
        # first scan block takes the LRU victim and later scan blocks evict
        # each other, so only one working-set block is lost.
        replay(cache, [0, 1, 2, 3, 0, 1, 2, 3])
        hits = replay(cache, [4, 5, 6, 0, 1, 2])
        assert hits == [False, False, False, False, True, True]

    def test_epsilon_fill_goes_to_mru(self):
        geometry = tiny_geometry(sets=1, assoc=4)
        cache = Cache(geometry, BIPPolicy(epsilon_inverse=1))
        # With epsilon 1/1 every fill is MRU: behaves exactly like LRU.
        lru = Cache(geometry, LRUPolicy())
        pattern = thrash_pattern(6, 4)
        assert replay(cache, pattern) == replay(lru, pattern)

    def test_bip_beats_lru_on_thrash(self):
        """The motivating case: working set of assoc+1 cycled repeatedly.
        LRU misses every time; BIP retains most of the working set."""
        pattern = thrash_pattern(5, 40)
        lru = Cache(tiny_geometry(sets=1, assoc=4), LRUPolicy())
        bip = Cache(tiny_geometry(sets=1, assoc=4), BIPPolicy())
        lru_hits = sum(replay(lru, pattern))
        bip_hits = sum(replay(bip, pattern))
        assert lru_hits == 0  # classic LRU pathological case
        assert bip_hits > len(pattern) // 2

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            BIPPolicy(epsilon_inverse=0)


class TestDIP:
    def test_leader_assignment_covers_both_policies(self):
        roles = DIPPolicy._assign_roles(num_sets=64, leader_sets=4)
        assert roles.count(DIPPolicy._LRU_LEADER) == 4
        assert roles.count(DIPPolicy._BIP_LEADER) == 4
        assert roles.count(DIPPolicy._FOLLOWER) == 56

    def test_leader_assignment_clamps_for_tiny_cache(self):
        roles = DIPPolicy._assign_roles(num_sets=4, leader_sets=32)
        assert roles.count(DIPPolicy._LRU_LEADER) == 2
        assert roles.count(DIPPolicy._BIP_LEADER) == 2

    def test_psel_moves_toward_bip_under_thrash(self):
        geometry = tiny_geometry(sets=16, assoc=4)
        policy = DIPPolicy(leader_sets=4, psel_bits=8)
        cache = Cache(geometry, policy)
        start = policy.psel
        # Thrash every set: blocks k, k+16, k+32, ... share set k.
        pattern = []
        for _ in range(30):
            for i in range(16 * 5):
                pattern.append(i)
        replay(cache, pattern)
        # Both leader groups miss, but LRU leaders miss strictly more,
        # so PSEL must drift up (toward BIP).
        assert policy.psel > start

    def test_dip_beats_lru_on_thrash(self):
        geometry = tiny_geometry(sets=4, assoc=4)
        pattern = []
        for _ in range(60):
            pattern.extend(range(4 * 5))  # 5 blocks per set: thrash
        lru = Cache(tiny_geometry(sets=4, assoc=4), LRUPolicy())
        dip = Cache(geometry, DIPPolicy(leader_sets=1, psel_bits=6))
        assert sum(replay(dip, pattern)) > sum(replay(lru, pattern))

    def test_dip_matches_lru_on_friendly_workload(self):
        """When the working set fits, DIP's followers stay in LRU mode and
        hit rates match plain LRU almost exactly."""
        geometry = tiny_geometry(sets=4, assoc=4)
        pattern = []
        for _ in range(50):
            pattern.extend(range(8))  # 2 blocks per set: fits easily
        lru = Cache(tiny_geometry(sets=4, assoc=4), LRUPolicy())
        dip = Cache(geometry, DIPPolicy(leader_sets=1))
        lru_hits = sum(replay(lru, pattern))
        dip_hits = sum(replay(dip, pattern))
        assert dip_hits >= lru_hits * 0.9

    def test_rejects_zero_leader_sets(self):
        with pytest.raises(ValueError):
            DIPPolicy(leader_sets=0)


class TestTADIP:
    def test_requires_positive_cores(self):
        with pytest.raises(ValueError):
            TADIPPolicy(num_cores=0)

    def test_each_core_owns_leader_sets(self):
        geometry = tiny_geometry(sets=64, assoc=4)
        policy = TADIPPolicy(num_cores=4, leader_sets=2)
        Cache(geometry, policy)
        owners = {owner for owner in policy._leader_owner if owner != TADIPPolicy._FOLLOWER}
        assert owners == {0, 1, 2, 3}

    def test_thrashing_core_switches_to_bip_friendly_core_does_not(self):
        geometry = tiny_geometry(sets=32, assoc=4)
        policy = TADIPPolicy(num_cores=2, leader_sets=4, psel_bits=6)
        cache = Cache(geometry, policy)
        seq = 0
        # Core 0: streams over a huge footprint (thrash).  Core 1: reuses a
        # tiny footprint (friendly).
        for round_index in range(40):
            for i in range(32 * 5):
                cache.access(
                    CacheAccess(address=i * 64, pc=1, seq=seq, core=0)
                )
                seq += 1
            for i in range(16):
                cache.access(
                    CacheAccess(address=(1 << 20) + i * 64, pc=2, seq=seq, core=1)
                )
                seq += 1
        assert policy._bip_wins(0)
        assert not policy._bip_wins(1)

    def test_single_core_tadip_behaves_like_dip_shape(self):
        """With one core, TADIP should still solve the thrash case."""
        geometry = tiny_geometry(sets=4, assoc=4)
        pattern = []
        for _ in range(60):
            pattern.extend(range(4 * 5))
        lru = Cache(tiny_geometry(sets=4, assoc=4), LRUPolicy())
        tadip = Cache(geometry, TADIPPolicy(num_cores=1, leader_sets=1, psel_bits=6))
        assert sum(replay(tadip, pattern)) > sum(replay(lru, pattern))
