"""Unit tests for repro.utils.rng."""

import pytest

from repro.utils.rng import XorShift64


class TestXorShift64:
    def test_deterministic_for_same_seed(self):
        a = XorShift64(42)
        b = XorShift64(42)
        assert [a.next_u64() for _ in range(20)] == [b.next_u64() for _ in range(20)]

    def test_different_seeds_differ(self):
        a = XorShift64(1)
        b = XorShift64(2)
        assert [a.next_u64() for _ in range(5)] != [b.next_u64() for _ in range(5)]

    def test_zero_seed_does_not_stick(self):
        rng = XorShift64(0)
        values = {rng.next_u64() for _ in range(10)}
        assert len(values) == 10

    def test_randrange_in_bounds(self):
        rng = XorShift64(7)
        for _ in range(1000):
            assert 0 <= rng.randrange(16) < 16

    def test_randrange_covers_all_values(self):
        rng = XorShift64(7)
        seen = {rng.randrange(8) for _ in range(500)}
        assert seen == set(range(8))

    def test_randrange_rejects_nonpositive(self):
        rng = XorShift64(7)
        with pytest.raises(ValueError):
            rng.randrange(0)

    def test_random_in_unit_interval(self):
        rng = XorShift64(9)
        for _ in range(1000):
            assert 0.0 <= rng.random() < 1.0

    def test_random_mean_near_half(self):
        rng = XorShift64(11)
        mean = sum(rng.random() for _ in range(20_000)) / 20_000
        assert abs(mean - 0.5) < 0.02

    def test_choice(self):
        rng = XorShift64(3)
        items = ["a", "b", "c"]
        assert {rng.choice(items) for _ in range(100)} == set(items)

    def test_choice_rejects_empty(self):
        with pytest.raises(IndexError):
            XorShift64(3).choice([])

    def test_shuffle_is_permutation(self):
        rng = XorShift64(5)
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity

    def test_fork_streams_independent(self):
        parent = XorShift64(123)
        child = parent.fork()
        parent_values = [parent.next_u64() for _ in range(10)]
        child_values = [child.next_u64() for _ in range(10)]
        assert parent_values != child_values
