"""Direct checks of specific quantitative claims in the paper's text.

Each test quotes the claim it verifies.  These complement the benchmark
suite: they are cheap enough for the unit-test tier because they use
synthetic access patterns rather than full workloads.
"""

import pytest

from repro.cache import Cache, CacheAccess, CacheGeometry
from repro.core import DBRBPolicy, SamplingDeadBlockPredictor
from repro.power import sampler_storage
from repro.replacement import LRUPolicy
from repro.utils.rng import XorShift64


class TestSamplerTrafficClaim:
    """Section III / Figure 2: "The sampler and dead block predictor table
    are updated for 1.6% of the accesses to the LLC." """

    def test_update_fraction_at_paper_geometry(self):
        geometry = CacheGeometry(2 * 1024 * 1024, 16, 64)  # 2048 sets
        predictor = SamplingDeadBlockPredictor()
        cache = Cache(geometry, DBRBPolicy(LRUPolicy(), predictor))
        rng = XorShift64(11)
        accesses = 40_000
        for seq in range(accesses):
            address = rng.randrange(1 << 28) & ~0x3F
            cache.access(CacheAccess(address=address, pc=0x400, seq=seq))
        fraction = predictor.sampler.accesses / accesses
        # 32 sampled sets of 2048 = 1.5625%.
        assert fraction == pytest.approx(0.015625, abs=0.003)

    def test_sampled_set_count_is_32(self):
        geometry = CacheGeometry(2 * 1024 * 1024, 16, 64)
        predictor = SamplingDeadBlockPredictor()
        Cache(geometry, DBRBPolicy(LRUPolicy(), predictor))
        assert predictor.sampler.num_sets == 32
        assert predictor.sampler.interval == 64  # "every 64th cache set"


class TestSamplerSignatureCountClaim:
    """Section III-D: the sampler keeps "far fewer" signatures than the
    32,768 reftrace would need -- one per sampler entry vs one per block."""

    def test_sampler_entries_vs_cache_blocks(self):
        geometry = CacheGeometry(2 * 1024 * 1024, 16, 64)
        predictor = SamplingDeadBlockPredictor()
        Cache(geometry, DBRBPolicy(LRUPolicy(), predictor))
        sampler_signatures = (
            predictor.sampler.num_sets * predictor.sampler.associativity
        )
        assert sampler_signatures == 384  # 32 sets x 12 ways
        assert geometry.num_blocks == 32768
        assert sampler_signatures < geometry.num_blocks / 80


class TestOneBitChannelClaim:
    """Section III-C: only "a single additional bit of metadata is needed
    for each cache block" with the sampling predictor."""

    def test_llc_blocks_carry_no_dict_metadata(self):
        geometry = CacheGeometry(64 * 1024, 16, 64)
        predictor = SamplingDeadBlockPredictor()
        cache = Cache(geometry, DBRBPolicy(LRUPolicy(), predictor))
        rng = XorShift64(3)
        for seq in range(5000):
            address = rng.randrange(1 << 22) & ~0x3F
            cache.access(CacheAccess(address=address, pc=0x400 + 4 * (seq % 9), seq=seq))
        for _, _, block in cache.resident_blocks():
            assert block.meta == {}, "sampling predictor must not grow block metadata"


class TestStorageClaims:
    """Section IV-C: "the sampling predictor consumes 13.75KB of storage,
    which is less than 1% of the capacity of a 2MB LLC." """

    def test_total_and_fraction(self):
        geometry = CacheGeometry(2 * 1024 * 1024, 16, 64)
        breakdown = sampler_storage(geometry)
        assert breakdown.total_kbytes == pytest.approx(13.75)
        assert breakdown.fraction_of_cache(geometry) < 0.01


class TestDeadTimeClaim:
    """Section I: "Cache blocks are dead on average 86.2% of the time" for
    LRU-managed LLCs on memory-intensive workloads.  We verify the weaker
    structural form: under a thrashing single-use pattern, dead time
    dominates residency."""

    def test_single_use_blocks_are_mostly_dead(self):
        from repro.analysis import EfficiencyObserver

        geometry = CacheGeometry(16 * 4 * 64, 4, 64)
        cache = Cache(geometry, LRUPolicy())
        observer = EfficiencyObserver(cache)
        cache.add_observer(observer)
        for seq in range(4000):
            cache.access(CacheAccess(address=seq * 64, pc=0x1, seq=seq))
        observer.finalize(cache, 4000)
        assert observer.efficiency < 0.15  # >85% dead time
