"""Tests for the timing model and the metrics helpers."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.sim.cpu import CoreModel
from repro.sim.hierarchy import FilteredTrace, MachineConfig
from repro.sim.metrics import (
    geometric_mean,
    jain_fairness_index,
    normalized_value,
    percentiles,
    weighted_speedup,
)
from repro.sim.trace import Trace, TraceRecord


def machine() -> MachineConfig:
    return MachineConfig(
        l1=CacheGeometry(2 * 2 * 64, 2, 64),
        l2=CacheGeometry(4 * 4 * 64, 4, 64),
        llc=CacheGeometry(16 * 8 * 64, 8, 64),
    )


def make_filtered(records, levels):
    trace = Trace("t", records)
    llc_indices = [i for i, level in enumerate(levels) if level == 3]
    return FilteredTrace(trace, levels, llc_indices)


def rec(gap=3, depends=False, pc=1, address=0):
    return TraceRecord(pc, address, False, gap, depends)


class TestCoreModel:
    def test_all_l1_hits_issue_bound(self):
        """With only L1 hits, IPC approaches the machine width."""
        records = [rec(gap=3) for _ in range(1000)]
        filtered = make_filtered(records, [1] * 1000)
        timing = CoreModel(machine()).run(filtered, [])
        assert timing.ipc == pytest.approx(4.0, rel=0.05)

    def test_independent_misses_overlap(self):
        """Independent LLC misses within the window overlap: total cycles
        are far less than misses x memory latency."""
        count = 200
        records = [rec(gap=3, depends=False) for _ in range(count)]
        filtered = make_filtered(records, [3] * count)
        timing = CoreModel(machine()).run(filtered, [False] * count)
        serialized = count * machine().memory_latency
        assert timing.cycles < 0.25 * serialized

    def test_dependent_misses_serialize(self):
        """Pointer-chase misses cannot overlap: cycles approach
        misses x memory latency."""
        count = 200
        records = [rec(gap=3, depends=True) for _ in range(count)]
        filtered = make_filtered(records, [3] * count)
        timing = CoreModel(machine()).run(filtered, [False] * count)
        assert timing.cycles > 0.9 * count * machine().memory_latency

    def test_dependent_slower_than_independent(self):
        count = 300
        for depends in (False, True):
            records = [rec(gap=3, depends=depends) for _ in range(count)]
            filtered = make_filtered(records, [3] * count)
            timing = CoreModel(machine()).run(filtered, [False] * count)
            if depends:
                dependent_cycles = timing.cycles
            else:
                independent_cycles = timing.cycles
        assert dependent_cycles > 3 * independent_cycles

    def test_llc_hits_faster_than_misses(self):
        count = 300
        records = [rec(gap=3) for _ in range(count)]
        filtered = make_filtered(records, [3] * count)
        model = CoreModel(machine())
        hit_cycles = model.run(filtered, [True] * count).cycles
        miss_cycles = model.run(filtered, [False] * count).cycles
        assert hit_cycles < miss_cycles

    def test_window_limits_mlp(self):
        """A 16-entry window must extract less MLP than a 256-entry one."""
        count = 400
        records = [rec(gap=7) for _ in range(count)]
        filtered = make_filtered(records, [3] * count)
        small = CoreModel(MachineConfig(window=16)).run(filtered, [False] * count)
        large = CoreModel(MachineConfig(window=256)).run(filtered, [False] * count)
        assert large.cycles < small.cycles

    def test_hit_vector_length_checked(self):
        records = [rec()]
        filtered = make_filtered(records, [3])
        with pytest.raises(ValueError):
            CoreModel(machine()).run(filtered, [])

    def test_ipc_zero_cycles_guard(self):
        from repro.sim.cpu import CoreTiming

        assert CoreTiming(instructions=10, cycles=0).ipc == 0.0


class TestMetrics:
    def test_geometric_mean_basics(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_normalized_value(self):
        assert normalized_value(5.0, 10.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            normalized_value(1.0, 0.0)

    def test_weighted_speedup(self):
        assert weighted_speedup([1.0, 2.0], [2.0, 2.0]) == pytest.approx(1.5)

    def test_weighted_speedup_validation(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_speedup([], [])
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [0.0])


class TestPercentiles:
    def test_nearest_rank_returns_sample_elements(self):
        values = [10.0, 40.0, 20.0, 30.0]
        result = percentiles(values)
        assert result[50.0] == 20.0
        assert result[95.0] == 40.0
        assert result[99.0] == 40.0
        # input order must not matter and the input is left untouched
        assert percentiles(list(reversed(sorted(values)))) == result
        assert values == [10.0, 40.0, 20.0, 30.0]

    def test_single_sample_dominates_every_point(self):
        assert percentiles([7.5], (1.0, 50.0, 99.9, 100.0)) == {
            1.0: 7.5, 50.0: 7.5, 99.9: 7.5, 100.0: 7.5,
        }

    def test_ties_are_preserved(self):
        result = percentiles([5.0] * 9 + [100.0], (50.0, 90.0, 99.0))
        assert result[50.0] == 5.0
        assert result[90.0] == 5.0
        assert result[99.0] == 100.0

    def test_extreme_points(self):
        values = list(range(1, 101))
        result = percentiles(values, (0.0, 100.0))
        assert result[0.0] == 1
        assert result[100.0] == 100

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentiles([])

    def test_out_of_range_point_rejected(self):
        with pytest.raises(ValueError):
            percentiles([1.0], (101.0,))
        with pytest.raises(ValueError):
            percentiles([1.0], (-1.0,))


class TestJainFairness:
    def test_equal_shares_are_perfectly_fair(self):
        assert jain_fairness_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_value_is_fair(self):
        assert jain_fairness_index([42.0]) == pytest.approx(1.0)

    def test_one_hot_allocation_is_worst_case(self):
        assert jain_fairness_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_defined_as_fair(self):
        assert jain_fairness_index([0.0, 0.0]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            jain_fairness_index([])
        with pytest.raises(ValueError):
            jain_fairness_index([1.0, -0.5])
