"""Resource hygiene for the workload store under injected faults.

A sweep whose workers crash or hang must not leak anything the store or
the shared-memory fan-out created: every exported segment is unlinked
whether the sweep completes, degrades to serial, or aborts, and the
on-disk store never keeps a half-written ``*.tmp.*`` file.  Leaked
segments are the classic failure mode here -- /dev/shm survives the
process, so a crashy sweep would otherwise eat memory run after run.

Everything spawns real pools and kills workers on purpose, hence
``@pytest.mark.faults`` and the hard deadline from ``tests/conftest.py``.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import pytest

from repro.harness.faults import FaultPolicy, SweepAborted
from repro.harness.parallel import parallel_single_thread_comparison
from repro.harness.runner import ExperimentConfig
from repro.sim.streamstore import SharedStreamExport, StreamStore

BENCHMARKS = ("perlbench", "mcf")
TECHNIQUE_KEYS = ("rrip",)
SMALL = ExperimentConfig(instructions=20_000)


@pytest.fixture(autouse=True)
def _isolate_store_env(monkeypatch):
    for name in ("REPRO_STREAM_CACHE", "REPRO_SHM", "REPRO_STREAM_REQUIRE"):
        monkeypatch.delenv(name, raising=False)


@pytest.fixture
def exported_segments(monkeypatch):
    """Record the shm segment names every export of this test creates."""
    names = []
    real_create = SharedStreamExport.create.__func__

    def spy(cls, compiled):
        export = real_create(cls, compiled)
        names.extend(name for _, name, _ in export.manifest().segments)
        return export

    monkeypatch.setattr(SharedStreamExport, "create", classmethod(spy))
    return names


def assert_no_leaks(names, store):
    assert names, "sweep never exported shared memory -- test is vacuous"
    leaked = []
    for name in names:
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue  # unlinked, as required
        segment.close()
        segment.unlink()
        leaked.append(name)
    assert not leaked, f"sweep leaked shared-memory segments: {leaked}"
    assert list((store.root / "streams").glob("*.tmp.*")) == []


@pytest.mark.faults
class TestFaultLeaks:
    @pytest.mark.parametrize(
        "spec,policy_kwargs",
        [
            ("crash:1.0", dict(max_retries=0, watchdog=2.0, backoff=0.0)),
            (
                "hang:1.0",
                dict(cell_timeout=0.5, max_retries=0, watchdog=4.0, backoff=0.0),
            ),
        ],
        ids=["crashed-workers", "hung-workers"],
    )
    def test_degraded_sweep_unlinks_segments(
        self, tmp_path, monkeypatch, exported_segments, spec, policy_kwargs
    ):
        # Every parallel attempt dies; the sweep degrades to serial and
        # still completes -- and the export it fanned out is gone.
        store = StreamStore(tmp_path / "store")
        monkeypatch.setenv("REPRO_FAULT_INJECT", spec)
        comparison = parallel_single_thread_comparison(
            SMALL, TECHNIQUE_KEYS, BENCHMARKS, jobs=2,
            stream_cache=store, shared_memory=True,
            fault_policy=FaultPolicy(**policy_kwargs),
        )
        assert not comparison.is_partial
        assert_no_leaks(exported_segments, store)
        # The store itself survived intact: both workloads still load.
        assert len(store) == len(BENCHMARKS)

    def test_aborted_sweep_unlinks_segments(
        self, tmp_path, monkeypatch, exported_segments
    ):
        # Degradation off: the sweep aborts with the failure taxonomy --
        # the cleanup path must still run on the way out.
        store = StreamStore(tmp_path / "store")
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:1.0")
        with pytest.raises(SweepAborted):
            parallel_single_thread_comparison(
                SMALL, TECHNIQUE_KEYS, BENCHMARKS, jobs=2,
                stream_cache=store, shared_memory=True,
                fault_policy=FaultPolicy(
                    max_retries=0, watchdog=2.0, backoff=0.0,
                    degrade_serially=False,
                ),
            )
        assert_no_leaks(exported_segments, store)

    def test_clean_sweep_unlinks_segments(self, tmp_path, exported_segments):
        # The happy path holds itself to the same standard.
        store = StreamStore(tmp_path / "store")
        comparison = parallel_single_thread_comparison(
            SMALL, TECHNIQUE_KEYS, BENCHMARKS, jobs=2,
            stream_cache=store, shared_memory=True,
        )
        assert not comparison.is_partial
        assert_no_leaks(exported_segments, store)
