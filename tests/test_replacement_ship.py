"""Tests for the SHiP follow-on insertion policy."""

import pytest

from repro.cache import Cache, CacheAccess
from repro.replacement import LRUPolicy, SHiPPolicy, SRRIPPolicy

from tests.conftest import replay, tiny_geometry


def small_cache(sets=4, assoc=4, ratio=1):
    geometry = tiny_geometry(sets=sets, assoc=assoc)
    policy = SHiPPolicy(sampled_set_ratio=ratio)
    return Cache(geometry, policy), policy


class TestConstruction:
    def test_shct_size(self):
        policy = SHiPPolicy(signature_bits=14)
        assert len(policy.shct) == 1 << 14

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            SHiPPolicy(sampled_set_ratio=0)

    def test_counters_start_weakly_reusing(self):
        policy = SHiPPolicy()
        assert all(value == 1 for value in policy.shct)


class TestLearning:
    def test_reuse_increments_signature(self):
        cache, policy = small_cache()
        signature = policy._signature_of(0x500)
        replay(cache, [0, 0], pc=0x500)  # fill + re-reference in sampled set
        assert policy.shct[signature] == 2

    def test_no_reuse_decrements_on_eviction(self):
        cache, policy = small_cache(sets=1, assoc=2)
        signature = policy._signature_of(0x500)
        # Stream single-touch blocks through: each eviction decrements.
        replay(cache, [0, 1, 2, 3, 4], pc=0x500)
        assert policy.shct[signature] == 0

    def test_reuse_counted_once_per_generation(self):
        cache, policy = small_cache()
        signature = policy._signature_of(0x500)
        replay(cache, [0, 0, 0, 0], pc=0x500)  # many hits, one generation
        assert policy.shct[signature] == 2

    def test_unsampled_sets_do_not_train(self):
        cache, policy = small_cache(sets=4, ratio=4)  # only set 0 sampled
        signature = policy._signature_of(0x500)
        replay(cache, [1, 1], pc=0x500)  # set 1: unsampled
        assert policy.shct[signature] == 1  # untouched


class TestInsertion:
    def test_dead_signature_inserts_distant(self):
        cache, policy = small_cache(sets=1, assoc=2)
        replay(cache, [0, 1, 2, 3, 4], pc=0x500)  # trains SHCT to 0
        cache.access(CacheAccess(address=9 * 64, pc=0x500, seq=99))
        way = cache.find(0, cache.geometry.tag(9 * 64))
        assert policy._rrpv[0][way] == policy.rrpv_max

    def test_reusing_signature_inserts_long(self):
        cache, policy = small_cache(sets=1, assoc=4)
        cache.access(CacheAccess(address=0, pc=0x700, seq=0))
        way = cache.find(0, 0)
        assert policy._rrpv[0][way] == policy.rrpv_max - 1

    def test_ship_protects_hot_set_from_long_scans(self):
        """The SHiP value proposition: single-touch scan signatures learn
        distant insertion, so arbitrarily long scans evict each other while
        the re-used working set keeps its near-RRPV -- SRRIP, whose scans
        insert at the *long* interval, ages the hot blocks out once a scan
        burst exceeds what its RRPV range can absorb."""

        def workload(cache):
            seq = 0
            stream = 1 << 14
            hits = 0
            total = 0
            for _ in range(30):
                for hot in range(8):  # 2 hot blocks per set
                    for _ in range(2):  # touched twice: shallow reuse
                        hit = cache.access(
                            CacheAccess(address=hot * 64, pc=0x100, seq=seq)
                        )
                        hits += hit
                        total += 1
                        seq += 1
                for _ in range(128):  # a long single-touch scan burst
                    cache.access(
                        CacheAccess(address=stream * 64, pc=0x200, seq=seq)
                    )
                    stream += 1
                    seq += 1
            return hits / total

        ship_cache, _ = small_cache(sets=4, assoc=4)
        srrip_cache = Cache(tiny_geometry(sets=4, assoc=4), SRRIPPolicy())
        assert workload(ship_cache) > workload(srrip_cache) + 0.1

    def test_ship_comparable_on_friendly_reuse(self):
        pattern = [0, 1, 2, 3] * 30
        ship_cache, _ = small_cache(sets=4, assoc=4)
        lru_cache = Cache(tiny_geometry(sets=4, assoc=4), LRUPolicy())
        assert sum(replay(ship_cache, pattern)) >= sum(replay(lru_cache, pattern)) - 2
