"""Tests for dead-block-directed prefetching."""

import pytest

from repro.cache import Cache, CacheAccess, CacheGeometry
from repro.core import DBRBPolicy, SamplingDeadBlockPredictor
from repro.prefetch import (
    CorrelationPrefetcher,
    NextBlockPrefetcher,
    PrefetchEngine,
)
from repro.replacement import LRUPolicy


def make_engine(prefetcher, sets=8, assoc=2):
    geometry = CacheGeometry(sets * assoc * 64, assoc, 64)
    cache = Cache(geometry, LRUPolicy())
    return PrefetchEngine(cache, prefetcher), geometry


class TestNextBlockPrefetcher:
    def test_rejects_zero_degree(self):
        with pytest.raises(ValueError):
            NextBlockPrefetcher(degree=0)

    def test_predicts_sequential_blocks(self):
        prefetcher = NextBlockPrefetcher(degree=3)
        assert prefetcher.predict(10) == [11, 12, 13]


class TestCorrelationPrefetcher:
    def test_learns_miss_pairs(self):
        prefetcher = CorrelationPrefetcher()
        prefetcher.observe_miss(100)
        prefetcher.observe_miss(250)
        assert prefetcher.predict(100) == [250]

    def test_most_recent_successor_first(self):
        prefetcher = CorrelationPrefetcher(ways=2)
        for successor in (250, 300):
            prefetcher.observe_miss(100)
            prefetcher.observe_miss(successor)
        assert prefetcher.predict(100) == [300, 250]

    def test_ways_bounded(self):
        prefetcher = CorrelationPrefetcher(ways=2)
        for successor in (250, 300, 350):
            prefetcher.observe_miss(100)
            prefetcher.observe_miss(successor)
        assert len(prefetcher.predict(100)) == 2

    def test_cold_trigger_predicts_nothing(self):
        assert CorrelationPrefetcher().predict(7) == []

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            CorrelationPrefetcher(ways=0)

    def test_repeated_same_block_not_self_linked(self):
        prefetcher = CorrelationPrefetcher()
        prefetcher.observe_miss(100)
        prefetcher.observe_miss(100)
        assert prefetcher.predict(100) == []


class TestPrefetchEngine:
    def test_sequential_stream_gets_covered(self):
        """Next-block prefetching over a stream that fits in the cache's
        invalid frames: two of every three accesses hit on prefetches."""
        engine, geometry = make_engine(NextBlockPrefetcher(degree=2))
        hits = [
            engine.access(CacheAccess(address=block * 64, pc=0x1, seq=block))
            for block in range(12)  # 16 frames: everything placeable
        ]
        engine.finalize()
        assert sum(hits) >= 7
        assert engine.stats.issued >= 7
        assert engine.stats.accuracy > 0.8

    def test_without_dead_frames_prefetching_starves(self):
        """The defining constraint: once the cache fills with predicted-
        live blocks, dead-block prefetching has nowhere to put data."""
        engine, geometry = make_engine(NextBlockPrefetcher(degree=2))
        for block in range(100):
            engine.access(CacheAccess(address=block * 64, pc=0x1, seq=block))
        # After the 16 frames fill, every prefetch is rejected.
        assert engine.stats.rejected_no_dead_frame > 40

    def test_prefetch_only_into_invalid_or_dead_frames(self):
        """A set full of predicted-live blocks must reject prefetches."""
        engine, geometry = make_engine(NextBlockPrefetcher(degree=1), sets=2, assoc=2)
        cache = engine.cache
        # Fill set 0 with two live blocks (blocks 0 and 2 -> set 0).
        for seq, block in enumerate((0, 2)):
            cache.access(CacheAccess(address=block * 64, pc=0x1, seq=seq))
        # Miss on block 3 (set 1) predicts block 4 (set 0): must be rejected.
        engine.access(CacheAccess(address=3 * 64, pc=0x1, seq=5))
        assert engine.stats.rejected_no_dead_frame == 1
        assert not cache.contains(4 * 64)

    def test_prefetch_into_dead_frame(self):
        engine, geometry = make_engine(NextBlockPrefetcher(degree=1), sets=2, assoc=2)
        cache = engine.cache
        for seq, block in enumerate((0, 2)):
            cache.access(CacheAccess(address=block * 64, pc=0x1, seq=seq))
        # Mark block 2's frame dead: prefetch of block 4 may now displace it.
        set_index = geometry.set_index(2 * 64)
        way = cache.find(set_index, geometry.tag(2 * 64))
        cache.sets[set_index][way].predicted_dead = True
        engine.access(CacheAccess(address=3 * 64, pc=0x1, seq=5))
        assert cache.contains(4 * 64)
        assert not cache.contains(2 * 64)

    def test_useful_prefetch_accounting(self):
        engine, geometry = make_engine(NextBlockPrefetcher(degree=1))
        engine.access(CacheAccess(address=0, pc=0x1, seq=0))    # miss, pf block 1
        hit = engine.access(CacheAccess(address=64, pc=0x1, seq=1))
        assert hit
        assert engine.stats.useful == 1

    def test_wasted_prefetch_accounting(self):
        engine, geometry = make_engine(NextBlockPrefetcher(degree=1), sets=2, assoc=1)
        engine.access(CacheAccess(address=0, pc=0x1, seq=0))      # pf block 1 (set 1)
        engine.access(CacheAccess(address=3 * 64, pc=0x1, seq=1))  # set 1: evicts pf
        engine.finalize()
        assert engine.stats.wasted >= 1

    def test_already_resident_not_reissued(self):
        engine, geometry = make_engine(NextBlockPrefetcher(degree=1))
        engine.access(CacheAccess(address=64, pc=0x1, seq=0))  # block 1 resident
        engine.access(CacheAccess(address=0, pc=0x1, seq=1))   # pf target = block 1
        assert engine.stats.already_resident == 1

    def test_with_dbrb_policy_on_stream(self):
        """Integration: the sampling predictor marks stream blocks dead,
        opening frames that sequential prefetching then fills."""
        geometry = CacheGeometry(32 * 4 * 64, 4, 64)
        policy = DBRBPolicy(
            LRUPolicy(),
            SamplingDeadBlockPredictor(sampler_assoc=4),
            enable_bypass=False,  # prefetch study: keep fills observable
        )
        cache = Cache(geometry, policy)
        engine = PrefetchEngine(cache, NextBlockPrefetcher(degree=2))
        hits = [
            engine.access(CacheAccess(address=block * 64, pc=0x5, seq=block))
            for block in range(1500)
        ]
        assert sum(hits[500:]) > 500  # the stream is largely covered


class TestCacheInsert:
    def test_insert_rejects_bad_way(self):
        geometry = CacheGeometry(2 * 2 * 64, 2, 64)
        cache = Cache(geometry, LRUPolicy())
        with pytest.raises(ValueError):
            cache.insert(CacheAccess(address=0, pc=0, seq=0), way=5)

    def test_insert_rejects_duplicate_block(self):
        geometry = CacheGeometry(2 * 2 * 64, 2, 64)
        cache = Cache(geometry, LRUPolicy())
        cache.access(CacheAccess(address=0, pc=0, seq=0))
        resident_way = cache.find(0, 0)
        other_way = 1 - resident_way
        with pytest.raises(ValueError):
            cache.insert(CacheAccess(address=0, pc=0, seq=1), way=other_way)

    def test_insert_evicts_occupant(self):
        geometry = CacheGeometry(2 * 2 * 64, 2, 64)
        cache = Cache(geometry, LRUPolicy())
        cache.access(CacheAccess(address=0, pc=0, seq=0))
        way = cache.find(0, 0)
        cache.insert(CacheAccess(address=4 * 64, pc=0, seq=1), way=way)
        assert not cache.contains(0)
        assert cache.contains(4 * 64)
        assert cache.stats.evictions == 1
