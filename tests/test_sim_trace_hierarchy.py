"""Tests for trace containers and the L1/L2 hierarchy filter."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.sim.hierarchy import HierarchyFilter, MachineConfig
from repro.sim.trace import Trace, TraceRecord


def tiny_machine() -> MachineConfig:
    """A machine small enough to reason about: 2-set L1, 4-set L2."""
    return MachineConfig(
        l1=CacheGeometry(2 * 2 * 64, 2, 64),
        l2=CacheGeometry(4 * 4 * 64, 4, 64),
        llc=CacheGeometry(16 * 8 * 64, 8, 64),
    )


def rec(pc, address, gap=2, write=False, depends=False):
    return TraceRecord(pc, address, write, gap, depends)


class TestTrace:
    def test_instruction_accounting(self):
        trace = Trace("t", [rec(1, 0, gap=3), rec(1, 64, gap=5)])
        assert trace.instructions == 3 + 5 + 2
        assert len(trace) == 2

    def test_memory_fraction(self):
        trace = Trace("t", [rec(1, 0, gap=4)])
        assert trace.memory_fraction == pytest.approx(1 / 5)

    def test_empty_trace(self):
        trace = Trace("empty", [])
        assert trace.instructions == 0
        assert trace.memory_fraction == 0.0

    def test_concatenate(self):
        a = Trace("a", [rec(1, 0)])
        b = Trace("b", [rec(2, 64), rec(3, 128)])
        joined = Trace.concatenate("ab", [a, b])
        assert len(joined) == 3
        assert joined.instructions == a.instructions + b.instructions

    def test_precomputed_instruction_count(self):
        records = [rec(1, 0, gap=3), rec(1, 64, gap=5)]
        # A caller-supplied total is trusted verbatim (no O(n) re-walk)...
        assert Trace("t", records, instructions=123).instructions == 123
        # ...and the summed default stays consistent with concatenate's
        # piecewise accumulation.
        pieces = [Trace("p", records[:1]), Trace("q", records[1:])]
        joined = Trace.concatenate("pq", pieces)
        assert joined.instructions == Trace("t", records).instructions

    def test_iteration_yields_records(self):
        records = [rec(1, 0), rec(2, 64)]
        assert list(Trace("t", records)) == records


class TestMachineConfig:
    def test_paper_defaults(self):
        config = MachineConfig()
        assert config.l1.describe() == "32KB 8-way 64B"
        assert config.l2.describe() == "256KB 8-way 64B"
        assert config.llc.describe() == "2MB 16-way 64B"
        assert config.width == 4
        assert config.window == 128

    def test_scaled(self):
        config = MachineConfig().scaled(8)
        assert config.llc.size_bytes == 256 * 1024
        assert config.l1.size_bytes == 4 * 1024
        assert config.width == 4  # core untouched

    def test_shared_llc(self):
        shared = MachineConfig().shared_llc(4)
        assert shared.size_bytes == 8 * 1024 * 1024  # paper's quad-core 8MB
        assert shared.associativity == 16

    def test_latency_resolution(self):
        config = MachineConfig()
        assert config.latency_for_level(1, llc_hit=False) == config.l1_latency
        assert config.latency_for_level(2, llc_hit=False) == config.l2_latency
        assert config.latency_for_level(3, llc_hit=True) == config.llc_latency
        assert config.latency_for_level(3, llc_hit=False) == config.memory_latency


class TestHierarchyFilter:
    def test_first_touch_reaches_llc(self):
        filtered = HierarchyFilter(tiny_machine()).filter(Trace("t", [rec(1, 0)]))
        assert filtered.levels == [3]
        assert filtered.llc_indices == [0]

    def test_immediate_retouch_hits_l1(self):
        trace = Trace("t", [rec(1, 0), rec(1, 8)])  # same 64B block
        filtered = HierarchyFilter(tiny_machine()).filter(trace)
        assert filtered.levels == [3, 1]
        assert filtered.llc_indices == [0]

    def test_l1_conflict_falls_to_l2(self):
        # L1: 2 sets, 2 ways.  Blocks 0, 2, 4 collide in L1 set 0 but all
        # fit in L2 (4 sets, 4 ways).
        trace = Trace(
            "t",
            [rec(1, 0), rec(1, 2 * 64), rec(1, 4 * 64), rec(1, 0)],
        )
        filtered = HierarchyFilter(tiny_machine()).filter(trace)
        assert filtered.levels == [3, 3, 3, 2]  # final re-touch: L1 miss, L2 hit

    def test_filter_ratio(self):
        trace = Trace("t", [rec(1, 0), rec(1, 8), rec(1, 16), rec(1, 24)])
        filtered = HierarchyFilter(tiny_machine()).filter(trace)
        assert filtered.filter_ratio() == pytest.approx(0.75)

    def test_llc_records_carry_pc_and_write(self):
        trace = Trace("t", [rec(7, 0, write=True)])
        filtered = HierarchyFilter(tiny_machine()).filter(trace)
        assert filtered.llc_records() == [(7, 0, True)]

    def test_temporal_locality_filtering(self):
        """The Section VII-A.3 phenomenon: a block touched k times in quick
        succession reaches the LLC only once, so the LLC-visible 'trace'
        of the block collapses to its first PC."""
        records = []
        for block in range(8):
            for touch, pc in enumerate([0x10, 0x20, 0x30]):
                records.append(rec(pc, block * 64 + touch * 8))
        filtered = HierarchyFilter(tiny_machine()).filter(Trace("t", records))
        llc_pcs = {pc for pc, _, _ in filtered.llc_records()}
        assert llc_pcs == {0x10}
