"""Unit and property tests for LRU replacement."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import Cache
from repro.replacement import LRUPolicy

from tests.conftest import replay, simulate_lru_reference, tiny_geometry


class TestLRUBasics:
    def test_stack_order_after_fills(self):
        geometry = tiny_geometry(sets=1, assoc=4)
        cache = Cache(geometry, LRUPolicy())
        replay(cache, [0, 1, 2, 3])
        policy: LRUPolicy = cache.policy
        # Most recent fill (block 3, way 3) must be MRU.
        assert policy.recency_order(0)[0] == 3
        assert policy.recency_order(0)[-1] == 0

    def test_hit_promotes_to_mru(self):
        geometry = tiny_geometry(sets=1, assoc=4)
        cache = Cache(geometry, LRUPolicy())
        replay(cache, [0, 1, 2, 3, 0])
        assert cache.policy.stack_position(0, 0) == 0

    def test_victim_is_lru(self):
        geometry = tiny_geometry(sets=1, assoc=2)
        cache = Cache(geometry, LRUPolicy())
        replay(cache, [0, 1, 2])  # evicts block 0
        assert not cache.contains(0)
        assert cache.contains(64)   # block 1
        assert cache.contains(128)  # block 2

    def test_classic_abcab_pattern(self):
        geometry = tiny_geometry(sets=1, assoc=2)
        cache = Cache(geometry, LRUPolicy())
        # A B A: A promoted; C evicts B, not A.
        replay(cache, [0, 1, 0, 2])
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_stack_property_smaller_cache_subset(self):
        """The LRU stack (inclusion) property: every hit in a 2-way LRU cache
        is also a hit in a 4-way LRU cache with the same number of sets."""
        pattern = [0, 1, 2, 0, 3, 1, 0, 2, 2, 1, 4, 0, 5, 1, 0]
        small = Cache(tiny_geometry(sets=1, assoc=2), LRUPolicy())
        large = Cache(tiny_geometry(sets=1, assoc=4), LRUPolicy())
        small_hits = replay(small, pattern)
        large_hits = replay(large, pattern)
        for small_hit, large_hit in zip(small_hits, large_hits):
            assert not small_hit or large_hit


@settings(max_examples=60, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300),
    sets_log=st.integers(min_value=0, max_value=3),
    assoc=st.sampled_from([1, 2, 4, 8]),
)
def test_lru_matches_reference_oracle(blocks, sets_log, assoc):
    """Property: the Cache+LRUPolicy pair behaves exactly like an
    independently written LRU oracle on arbitrary access strings."""
    sets = 1 << sets_log
    cache = Cache(tiny_geometry(sets=sets, assoc=assoc), LRUPolicy())
    expected = simulate_lru_reference(blocks, sets, assoc)
    actual = replay(cache, blocks)
    assert actual == expected


@settings(max_examples=40, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=200),
)
def test_lru_inclusion_property(blocks):
    """Property: for any access string, hits in an A-way LRU cache are a
    subset of hits in a 2A-way LRU cache (the classic stack property)."""
    small = Cache(tiny_geometry(sets=2, assoc=2), LRUPolicy())
    large = Cache(tiny_geometry(sets=2, assoc=4), LRUPolicy())
    small_hits = replay(small, blocks)
    large_hits = replay(large, blocks)
    assert all(large for small, large in zip(small_hits, large_hits) if small)
