"""Tests for the single-core runner and the quad-core shared-LLC system."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core import DBRBPolicy, SamplingDeadBlockPredictor
from repro.replacement import LRUPolicy, OptimalPolicy, annotate_next_use
from repro.sim import MachineConfig, MulticoreSystem, SingleCoreSystem
from repro.sim.system import build_llc_accesses
from repro.sim.trace import Trace, TraceRecord
from repro.workloads import build_trace


def small_machine() -> MachineConfig:
    return MachineConfig(
        l1=CacheGeometry(2 * 2 * 64, 2, 64),
        l2=CacheGeometry(4 * 4 * 64, 4, 64),
        llc=CacheGeometry(16 * 8 * 64, 8, 64),
    )


def simple_trace(name="t", blocks=200, repeats=3, gap=3):
    records = []
    for _ in range(repeats):
        for block in range(blocks):
            records.append(TraceRecord(0x400, block * 64, False, gap, False))
    return Trace(name, records)


class TestSingleCoreSystem:
    def test_run_produces_consistent_result(self):
        system = SingleCoreSystem(small_machine())
        filtered = system.prepare(simple_trace())
        result = system.run(filtered, lambda g, a: LRUPolicy(), "lru")
        assert result.technique == "lru"
        assert result.llc_stats.accesses == len(filtered.llc_indices)
        assert len(result.llc_hits) == len(filtered.llc_indices)
        assert result.mpki > 0
        assert result.ipc > 0

    def test_compute_timing_false_skips_ipc(self):
        system = SingleCoreSystem(small_machine())
        filtered = system.prepare(simple_trace())
        result = system.run(
            filtered, lambda g, a: LRUPolicy(), "lru", compute_timing=False
        )
        assert result.timing is None
        assert result.ipc == 0.0

    def test_build_llc_accesses_seq_is_stream_position(self):
        system = SingleCoreSystem(small_machine())
        filtered = system.prepare(simple_trace())
        accesses = build_llc_accesses(filtered)
        assert [a.seq for a in accesses] == list(range(len(accesses)))

    def test_optimal_policy_integrates(self):
        system = SingleCoreSystem(small_machine())
        filtered = system.prepare(simple_trace())
        lru = system.run(filtered, lambda g, a: LRUPolicy(), "lru")
        optimal = system.run(
            filtered,
            lambda g, a: OptimalPolicy(annotate_next_use(a, g)),
            "optimal",
            compute_timing=False,
        )
        assert optimal.llc_stats.misses <= lru.llc_stats.misses

    def test_fewer_misses_means_no_worse_ipc(self):
        """The timing model must be monotone: an all-hit LLC outcome is at
        least as fast as an all-miss one."""
        system = SingleCoreSystem(small_machine())
        filtered = system.prepare(simple_trace())
        hits = [True] * len(filtered.llc_indices)
        misses = [False] * len(filtered.llc_indices)
        fast = system._core.run(filtered, hits)
        slow = system._core.run(filtered, misses)
        assert fast.ipc >= slow.ipc

    def test_llc_geometry_override(self):
        system = SingleCoreSystem(small_machine())
        filtered = system.prepare(simple_trace())
        big = CacheGeometry(64 * 8 * 64, 8, 64)
        small_result = system.run(filtered, lambda g, a: LRUPolicy(), "s")
        big_result = system.run(
            filtered, lambda g, a: LRUPolicy(), "b", llc_geometry=big
        )
        assert big_result.llc_stats.misses <= small_result.llc_stats.misses


class TestMulticoreSystem:
    @pytest.fixture(scope="class")
    def system(self):
        return MulticoreSystem(small_machine(), num_cores=4)

    @pytest.fixture(scope="class")
    def prepared(self, system):
        traces = [
            simple_trace(name=f"core{i}", blocks=100 + 40 * i) for i in range(4)
        ]
        return system.prepare("testmix", traces)

    def test_rejects_bad_core_count(self):
        with pytest.raises(ValueError):
            MulticoreSystem(small_machine(), num_cores=0)

    def test_prepare_rejects_wrong_trace_count(self, system):
        with pytest.raises(ValueError):
            system.prepare("bad", [simple_trace()])

    def test_shared_geometry_is_four_times_private(self, system):
        assert system.shared_geometry.size_bytes == 4 * small_machine().llc.size_bytes

    def test_merge_preserves_all_accesses(self, prepared):
        per_core = sum(len(positions) for positions in prepared.per_core_positions)
        assert per_core == len(prepared.merged)
        assert [a.seq for a in prepared.merged] == list(range(len(prepared.merged)))

    def test_merged_stream_interleaves_cores(self, prepared):
        cores_in_first_quarter = {
            access.core for access in prepared.merged[: len(prepared.merged) // 4]
        }
        assert len(cores_in_first_quarter) == 4  # nobody runs alone up front

    def test_core_address_spaces_disjoint(self, prepared):
        by_core = {}
        for access in prepared.merged:
            by_core.setdefault(access.core, set()).add(access.address >> 44)
        for core, prefixes in by_core.items():
            assert prefixes == {core}

    def test_single_ipcs_positive(self, prepared):
        assert all(ipc > 0 for ipc in prepared.single_ipcs)

    def test_run_produces_per_core_ipcs(self, system, prepared):
        result = system.run(prepared, lambda g, a, n: LRUPolicy(), "lru")
        assert len(result.ipcs) == 4
        assert all(ipc > 0 for ipc in result.ipcs)
        assert result.weighted_ipc > 0
        assert result.llc_stats.accesses == len(prepared.merged)

    def test_weighted_ipc_at_most_num_cores(self, system, prepared):
        """Each thread's shared IPC cannot beat its solo full-cache IPC, so
        the weighted sum is bounded by the core count (up to timing-model
        noise from the merged interleaving)."""
        result = system.run(prepared, lambda g, a, n: LRUPolicy(), "lru")
        assert result.weighted_ipc <= 4.0 + 0.2

    def test_sampler_not_worse_than_lru_on_real_mix(self):
        machine = MachineConfig().scaled(32)
        system = MulticoreSystem(machine, num_cores=4)
        traces = [
            build_trace(name, 30_000, machine.llc.size_bytes, seed=3)
            for name in ("hmmer", "libquantum", "soplex", "gamess")
        ]
        prepared = system.prepare("mix", traces)
        lru = system.run(prepared, lambda g, a, n: LRUPolicy(), "lru")
        sampler = system.run(
            prepared,
            lambda g, a, n: DBRBPolicy(LRUPolicy(), SamplingDeadBlockPredictor()),
            "sampler",
        )
        assert sampler.llc_stats.misses <= lru.llc_stats.misses * 1.02
