"""The compiled workload store (:mod:`repro.sim.streamstore`).

The store's one promise is result transparency: a workload reconstructed
from a compiled blob -- fresh, off disk, or out of a shared-memory
segment -- replays bit-identically to one prepared from scratch.  The
hypothesis property here pins that over arbitrary traces; the unit tests
pin the storage discipline around it (content addressing, atomic writes,
corruption read as a miss, eviction) and the shared-memory lifecycle.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.sim.hierarchy import HierarchyFilter, MachineConfig
from repro.sim.streamstore import (
    CompiledWorkload,
    SharedStreamExport,
    StreamStore,
    attach_shared_streams,
    compile_filtered,
    encode_filtered,
    resolve_stream_cache_dir,
    shared_memory_enabled,
)
from repro.sim.trace import Trace, TraceRecord

#: A tiny machine so generated traces actually reach the LLC.
TINY = MachineConfig(
    l1=CacheGeometry(1024, 2, 64),
    l2=CacheGeometry(2048, 4, 64),
    llc=CacheGeometry(4096, 4, 64),
)

records_strategy = st.lists(
    st.builds(
        TraceRecord,
        pc=st.sampled_from([0x400000, 0x400004, 0x400010, 0x40abc0]),
        address=st.integers(min_value=0, max_value=1 << 20).map(lambda a: a & ~0x3),
        is_write=st.booleans(),
        gap=st.integers(min_value=0, max_value=5),
        depends=st.booleans(),
    ),
    min_size=1,
    max_size=300,
)


def fresh_filtered(records):
    return HierarchyFilter(TINY).filter(Trace("synthetic", list(records)))


def compile_of(filtered, key="test-key"):
    return compile_filtered(filtered, TINY, key)


class TestRoundTripProperty:
    @settings(max_examples=40, deadline=None)
    @given(records=records_strategy)
    def test_compiled_workload_equals_fresh_preparation(self, records):
        fresh = fresh_filtered(records)
        rebuilt = compile_of(fresh).filtered_trace()

        assert list(rebuilt.levels) == list(fresh.levels)
        assert list(rebuilt.llc_indices) == list(fresh.llc_indices)
        assert rebuilt.llc_arrays() == fresh.llc_arrays()
        assert rebuilt.instructions == fresh.instructions
        assert rebuilt.name == fresh.name
        assert list(rebuilt.trace.records) == list(records)

        mine = rebuilt.llc_stream(TINY.llc)
        theirs = fresh.llc_stream(TINY.llc)
        assert mine.set_indices == theirs.set_indices
        assert mine.tags == theirs.tags
        assert [a.address for a in mine.accesses] == [
            a.address for a in theirs.accesses
        ]
        assert [a.seq for a in mine.accesses] == [a.seq for a in theirs.accesses]
        assert [a.is_write for a in mine.accesses] == [
            a.is_write for a in theirs.accesses
        ]

        assert rebuilt.fixed_latencies(
            TINY.l1_latency, TINY.l2_latency
        ) == fresh.fixed_latencies(TINY.l1_latency, TINY.l2_latency)

    @settings(max_examples=20, deadline=None)
    @given(records=records_strategy)
    def test_encode_decode_is_stable(self, records):
        # Encoding a decoded blob reproduces the identical bytes: the
        # format is canonical, so content addressing is meaningful.
        fresh = fresh_filtered(records)
        blob = encode_filtered(fresh, TINY, "test-key")
        again = encode_filtered(
            CompiledWorkload.from_buffer(blob).filtered_trace(), TINY, "test-key"
        )
        assert blob == again


class TestBlobValidation:
    def test_rejects_garbage_and_truncation(self):
        blob = encode_filtered(fresh_filtered([TraceRecord(1, 64, False, 0, False)]),
                               TINY, "k")
        with pytest.raises(ValueError):
            CompiledWorkload.from_buffer(b"not a stream blob")
        with pytest.raises(ValueError):
            CompiledWorkload.from_buffer(blob[: len(blob) // 2])
        with pytest.raises(ValueError):
            CompiledWorkload.from_buffer(b"RPSTRM01" + b"\xff" * 32)

    def test_uncompiled_geometry_falls_back_to_derivation(self):
        # A geometry that was not baked into the blob still works: the
        # reconstructed trace derives set/tag like a fresh one would.
        fresh = fresh_filtered(
            [TraceRecord(1, 64 * i, False, 0, False) for i in range(64)]
        )
        rebuilt = compile_of(fresh).filtered_trace()
        other = CacheGeometry(8192, 2, 64)
        assert rebuilt.llc_stream(other).set_indices == fresh.llc_stream(
            other
        ).set_indices

    def test_foreign_latency_pair_recomputes(self):
        fresh = fresh_filtered(
            [TraceRecord(1, 64 * i, False, 0, False) for i in range(64)]
        )
        rebuilt = compile_of(fresh).filtered_trace()
        assert rebuilt.fixed_latencies(7, 70) == fresh.fixed_latencies(7, 70)


class TestStreamStore:
    def make(self, tmp_path, records=None):
        fresh = fresh_filtered(
            records
            or [TraceRecord(1, 64 * i, i % 3 == 0, 1, False) for i in range(128)]
        )
        store = StreamStore(tmp_path / "store")
        return store, compile_of(fresh, key="bench|budget|seed")

    def test_store_load_round_trip(self, tmp_path):
        store, compiled = self.make(tmp_path)
        store.store(compiled)
        loaded = store.load(compiled.key)
        assert loaded is not None
        assert loaded.to_bytes() == compiled.to_bytes()
        assert store.load("some-other-key") is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store, compiled = self.make(tmp_path)
        path = store.store(compiled)
        path.write_bytes(path.read_bytes()[: 40])
        assert store.load(compiled.key) is None
        path.write_bytes(b"\x00" * 100)
        assert store.load(compiled.key) is None

    def test_misfiled_entry_reads_as_miss(self, tmp_path):
        # A blob copied under another key's file name fails the embedded
        # key check instead of impersonating that key's workload.
        store, compiled = self.make(tmp_path)
        store.store(compiled)
        wrong = store.path_for_key("a-different-key")
        wrong.write_bytes(store.path_for_key(compiled.key).read_bytes())
        assert store.load("a-different-key") is None

    def test_atomic_write_leaves_no_temp_on_failure(self, tmp_path, monkeypatch):
        store, compiled = self.make(tmp_path)

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            store.store(compiled)
        monkeypatch.undo()
        assert list((tmp_path / "store" / "streams").iterdir()) == []
        assert store.load(compiled.key) is None

    def test_entries_footprint_evict_clear(self, tmp_path):
        store, compiled = self.make(tmp_path)
        store.store(compiled)
        entries = store.entries()
        assert len(entries) == 1 and len(store) == 1
        entry = entries[0]
        assert entry.name == "synthetic"
        assert entry.nbytes == compiled.nbytes
        assert store.footprint() == entry.nbytes
        assert store.evict("no-such-workload") == 0
        assert store.evict(entry.digest[:8]) == 1
        assert len(store) == 0
        store.store(compiled)
        assert store.evict("synthetic") == 1
        store.store(compiled)
        assert store.clear() == 1 and len(store) == 0

    def test_workload_key_covers_determinants(self):
        base = StreamStore.workload_key("mcf", 1000, 1, TINY)
        assert StreamStore.workload_key("mcf", 1000, 1, TINY) == base
        assert StreamStore.workload_key("lbm", 1000, 1, TINY) != base
        assert StreamStore.workload_key("mcf", 2000, 1, TINY) != base
        assert StreamStore.workload_key("mcf", 1000, 2, TINY) != base
        other = MachineConfig(l1=TINY.l1, l2=TINY.l2, llc=CacheGeometry(8192, 4, 64))
        assert StreamStore.workload_key("mcf", 1000, 1, other) != base


class TestEnvResolution:
    def test_stream_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STREAM_CACHE", raising=False)
        assert resolve_stream_cache_dir() is None
        assert StreamStore.from_env() is None
        monkeypatch.setenv("REPRO_STREAM_CACHE", str(tmp_path / "env"))
        assert resolve_stream_cache_dir() == tmp_path / "env"
        assert StreamStore.from_env().root == tmp_path / "env"
        # An explicit argument wins over the environment.
        assert resolve_stream_cache_dir(tmp_path / "arg") == tmp_path / "arg"

    def test_shm_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert shared_memory_enabled() is False
        assert shared_memory_enabled(True) is True
        monkeypatch.setenv("REPRO_SHM", "1")
        assert shared_memory_enabled() is True
        assert shared_memory_enabled(False) is False


class TestSharedMemory:
    def test_attach_sees_identical_bytes_and_results(self):
        fresh = fresh_filtered(
            [TraceRecord(1, 64 * (i % 96), False, 1, False) for i in range(256)]
        )
        compiled = compile_of(fresh)
        export = SharedStreamExport.create({"synthetic": compiled})
        try:
            attached = attach_shared_streams(export.manifest())
            workload = attached["synthetic"]
            assert workload.to_bytes() == compiled.to_bytes()
            rebuilt = workload.filtered_trace()
            assert rebuilt.llc_arrays() == fresh.llc_arrays()
            workload.release()
        finally:
            export.close()

    def test_close_is_idempotent_and_unlinks(self):
        from multiprocessing import shared_memory

        fresh = fresh_filtered([TraceRecord(1, 64, False, 0, False)])
        export = SharedStreamExport.create({"synthetic": compile_of(fresh)})
        (_, name, _), = export.manifest().segments
        export.close()
        export.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_empty_manifest_attaches_nothing(self):
        assert attach_shared_streams(None) == {}


class TestWorkloadCacheIntegration:
    CONFIG = ExperimentConfig(instructions=20_000)

    def test_cold_then_warm_counters_and_identity(self, tmp_path):
        store = StreamStore(tmp_path / "store")
        cold = WorkloadCache(self.CONFIG, stream_store=store)
        fresh = cold.filtered("mcf")
        assert (cold.stream_hits, cold.stream_misses) == (0, 1)
        assert len(store) == 1

        warm = WorkloadCache(self.CONFIG, stream_store=store)
        loaded = warm.filtered("mcf")
        assert (warm.stream_hits, warm.stream_misses) == (1, 0)
        assert loaded.llc_arrays() == fresh.llc_arrays()
        assert list(loaded.levels) == list(fresh.levels)

    def test_compiled_streams_take_precedence(self, tmp_path):
        primed = WorkloadCache(self.CONFIG)
        compiled = primed.compiled("mcf")
        cache = WorkloadCache(self.CONFIG, compiled_streams={"mcf": compiled})
        cache.filtered("mcf")
        assert (cache.stream_hits, cache.stream_misses) == (1, 0)

    def test_stale_compiled_stream_is_ignored(self):
        # A compiled blob whose key disagrees (different seed here) must
        # not be served; the cache falls back to a cold build.
        primed = WorkloadCache(ExperimentConfig(instructions=20_000, seed=7))
        stale = primed.compiled("mcf")
        cache = WorkloadCache(self.CONFIG, compiled_streams={"mcf": stale})
        cache.filtered("mcf")
        assert (cache.stream_hits, cache.stream_misses) == (0, 1)

    def test_stream_require_guards_cold_compiles(self, tmp_path, monkeypatch):
        store = StreamStore(tmp_path / "store")
        monkeypatch.setenv("REPRO_STREAM_REQUIRE", "1")
        cache = WorkloadCache(self.CONFIG, stream_store=store)
        with pytest.raises(RuntimeError, match="REPRO_STREAM_REQUIRE"):
            cache.filtered("mcf")
        monkeypatch.delenv("REPRO_STREAM_REQUIRE")
        WorkloadCache(self.CONFIG, stream_store=store).filtered("mcf")
        monkeypatch.setenv("REPRO_STREAM_REQUIRE", "1")
        warm = WorkloadCache(self.CONFIG, stream_store=store)
        warm.filtered("mcf")  # warm path: no compile, no error
        assert warm.stream_hits == 1
