"""Tests for trace persistence and JSON result export."""

import json

import pytest

from repro.harness import ExperimentConfig, WorkloadCache, single_thread_comparison
from repro.harness.export import export_json, to_dict
from repro.sim.trace import Trace, TraceRecord
from repro.sim.traceio import load_trace, save_trace
from repro.workloads import build_trace


def sample_trace():
    return Trace(
        "sample",
        [
            TraceRecord(0x400100, 0x1000, False, 3, False),
            TraceRecord(0x400104, 0x2040, True, 0, False),
            TraceRecord(0x400108, 0xDEADBEC0, False, 7, True),
        ],
    )


class TestTraceIO:
    def test_round_trip(self, tmp_path):
        original = sample_trace()
        path = tmp_path / "t.trace"
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.name == "sample"
        assert loaded.records == original.records
        assert loaded.instructions == original.instructions

    def test_gzip_round_trip(self, tmp_path):
        original = sample_trace()
        path = tmp_path / "t.trace.gz"
        save_trace(original, path)
        assert load_trace(path).records == original.records

    def test_generated_workload_round_trip(self, tmp_path):
        original = build_trace("hmmer", 20_000, 64 * 1024)
        path = tmp_path / "hmmer.trace"
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.records == original.records

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not a trace\n")
        with pytest.raises(ValueError, match="bad header"):
            load_trace(path)

    def test_rejects_short_line(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1 name=x\n400 1000 R\n")
        with pytest.raises(ValueError, match="expected 5 fields"):
            load_trace(path)

    def test_rejects_bad_kind(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1 name=x\n400 1000 Q 3 -\n")
        with pytest.raises(ValueError, match="bad access kind"):
            load_trace(path)

    def test_rejects_bad_numbers(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1 name=x\nzz 1000 R 3 -\n")
        with pytest.raises(ValueError, match="malformed numeric"):
            load_trace(path)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ok.trace"
        path.write_text(
            "# repro-trace v1 name=x\n# comment\n\n400 1000 R 3 -\n"
        )
        assert len(load_trace(path)) == 1


class TestExport:
    @pytest.fixture(scope="class")
    def comparison(self):
        cache = WorkloadCache(ExperimentConfig(scale=32, instructions=25_000))
        return single_thread_comparison(
            cache, technique_keys=("sampler",), benchmarks=("hmmer",)
        )

    def test_to_dict_structure(self, comparison):
        data = to_dict(comparison)
        assert data["kind"] == "single_thread_comparison"
        assert data["benchmarks"] == ["hmmer"]
        assert "sampler" in data["normalized_mpki"]["hmmer"]
        assert "sampler" in data["speedup_gmean"]

    def test_export_json_writes_valid_json(self, comparison, tmp_path):
        path = tmp_path / "out.json"
        export_json(comparison, path)
        data = json.loads(path.read_text())
        assert data["kind"] == "single_thread_comparison"

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            to_dict(object())


class TestExportOtherKinds:
    @pytest.fixture(scope="class")
    def cache(self):
        return WorkloadCache(ExperimentConfig(scale=32, instructions=25_000))

    def test_accuracy_result_serializes(self, cache, tmp_path):
        from repro.harness import accuracy_experiment

        result = accuracy_experiment(cache, benchmarks=("hmmer",))
        data = to_dict(result)
        assert data["kind"] == "accuracy"
        assert "sampler" in data["mean_coverage"]
        export_json(result, tmp_path / "a.json")
        assert json.loads((tmp_path / "a.json").read_text())["kind"] == "accuracy"

    def test_efficiency_result_serializes(self, cache):
        from repro.harness import efficiency_experiment

        result = efficiency_experiment(cache, benchmark="hmmer")
        data = to_dict(result)
        assert data["kind"] == "efficiency"
        assert 0 <= data["lru_efficiency"] <= 1

    def test_multicore_result_serializes(self, cache):
        from repro.harness import multicore_comparison

        result = multicore_comparison(cache, ("sampler",), mixes=("mix1",))
        data = to_dict(result)
        assert data["kind"] == "multicore_comparison"
        assert "sampler" in data["normalized_weighted_speedup"]["mix1"]
        assert "sampler" in data["speedup_gmean"]
