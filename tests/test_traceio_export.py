"""Tests for trace persistence and JSON result export."""

import json

import pytest

from repro.harness import ExperimentConfig, WorkloadCache, single_thread_comparison
from repro.harness.export import export_json, to_dict
from repro.sim.trace import Trace, TraceRecord
from repro.sim.traceio import load_trace, save_trace
from repro.workloads import build_trace


def sample_trace():
    return Trace(
        "sample",
        [
            TraceRecord(0x400100, 0x1000, False, 3, False),
            TraceRecord(0x400104, 0x2040, True, 0, False),
            TraceRecord(0x400108, 0xDEADBEC0, False, 7, True),
        ],
    )


class TestTraceIO:
    def test_round_trip(self, tmp_path):
        original = sample_trace()
        path = tmp_path / "t.trace"
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.name == "sample"
        assert loaded.records == original.records
        assert loaded.instructions == original.instructions

    def test_gzip_round_trip(self, tmp_path):
        original = sample_trace()
        path = tmp_path / "t.trace.gz"
        save_trace(original, path)
        assert load_trace(path).records == original.records

    def test_generated_workload_round_trip(self, tmp_path):
        original = build_trace("hmmer", 20_000, 64 * 1024)
        path = tmp_path / "hmmer.trace"
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.records == original.records

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not a trace\n")
        with pytest.raises(ValueError, match="bad header"):
            load_trace(path)

    def test_rejects_short_line(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1 name=x\n400 1000 R\n")
        with pytest.raises(ValueError, match="expected 5 fields"):
            load_trace(path)

    def test_rejects_bad_kind(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1 name=x\n400 1000 Q 3 -\n")
        with pytest.raises(ValueError, match="bad access kind"):
            load_trace(path)

    def test_rejects_bad_numbers(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1 name=x\nzz 1000 R 3 -\n")
        with pytest.raises(ValueError, match="malformed numeric"):
            load_trace(path)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ok.trace"
        path.write_text(
            "# repro-trace v1 name=x\n# comment\n\n400 1000 R 3 -\n"
        )
        assert len(load_trace(path)) == 1


class TestTraceIOValidation:
    """Hardened ingestion: hostile or damaged files fail loudly, with
    the offending line number, instead of producing a silently-wrong
    simulation input."""

    def test_rejects_negative_gap(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1 name=x\n400 1000 R -3 -\n")
        with pytest.raises(ValueError, match=r"bad\.trace:2.*negative instruction gap"):
            load_trace(path)

    @pytest.mark.parametrize("pc,address,field", [
        ("1" + "0" * 17, "1000", "pc"),          # 2^68: 18 hex digits
        ("400", "1" + "0" * 17, "address"),
        ("-400", "1000", "pc"),
        ("400", "-1000", "address"),
    ])
    def test_rejects_out_of_range_fields(self, tmp_path, pc, address, field):
        path = tmp_path / "bad.trace"
        path.write_text(f"# repro-trace v1 name=x\n{pc} {address} R 3 -\n")
        with pytest.raises(ValueError, match=f"{field} .*out of 64-bit range"):
            load_trace(path)

    def test_boundary_values_accepted(self, tmp_path):
        # 2^64 - 1 is a legal 64-bit value; zero gap means back-to-back
        # memory instructions.  Neither is an error.
        top = (1 << 64) - 1
        path = tmp_path / "ok.trace"
        path.write_text(f"# repro-trace v1 name=x\n{top:x} {top:x} W 0 D\n")
        record = load_trace(path).records[0]
        assert record.pc == top and record.address == top and record.gap == 0

    def test_truncated_final_record_is_called_out(self, tmp_path):
        # A copy cut off mid-line: the last record has no newline and too
        # few fields.  The error should suggest truncation, not garbage.
        path = tmp_path / "cut.trace"
        path.write_text("# repro-trace v1 name=x\n400 1000 R 3 -\n404 20")
        with pytest.raises(ValueError, match=r"truncated final record"):
            load_trace(path)

    def test_complete_final_line_not_blamed_for_truncation(self, tmp_path):
        # The same field-count error on a newline-terminated line must
        # NOT carry the truncation hint -- that would misdirect the user.
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1 name=x\n404 20\n")
        with pytest.raises(ValueError) as excinfo:
            load_trace(path)
        assert "truncated" not in str(excinfo.value)

    def test_truncated_gzip_stream_rejected(self, tmp_path):
        whole = tmp_path / "t.trace.gz"
        save_trace(sample_trace(), whole)
        cut = tmp_path / "cut.trace.gz"
        cut.write_bytes(whole.read_bytes()[:-10])  # lose the gzip trailer
        with pytest.raises(ValueError, match="truncated gzip stream"):
            load_trace(cut)


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the dev env
    HAVE_HYPOTHESIS = False


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestTraceIOProperties:
    """Property test: *every* trace the simulator can represent survives
    save -> load bit-for-bit, so the validation added above can never
    reject a file we ourselves wrote."""

    records_strategy = st.lists(
        st.builds(
            TraceRecord,
            st.integers(min_value=0, max_value=(1 << 64) - 1),  # pc
            st.integers(min_value=0, max_value=(1 << 64) - 1),  # address
            st.booleans(),                                      # is_write
            st.integers(min_value=0, max_value=10_000),         # gap
            st.booleans(),                                      # depends
        ),
        max_size=40,
    )

    @given(records=records_strategy)
    @settings(max_examples=60, deadline=None)
    def test_round_trip_is_identity(self, tmp_path_factory, records):
        tmp = tmp_path_factory.mktemp("prop")
        original = Trace("prop", records)
        for suffix in ("t.trace", "t.trace.gz"):
            path = tmp / suffix
            save_trace(original, path)
            loaded = load_trace(path)
            assert loaded.name == "prop"
            assert loaded.records == original.records
            assert loaded.instructions == original.instructions


class TestExport:
    @pytest.fixture(scope="class")
    def comparison(self):
        cache = WorkloadCache(ExperimentConfig(scale=32, instructions=25_000))
        return single_thread_comparison(
            cache, technique_keys=("sampler",), benchmarks=("hmmer",)
        )

    def test_to_dict_structure(self, comparison):
        data = to_dict(comparison)
        assert data["kind"] == "single_thread_comparison"
        assert data["benchmarks"] == ["hmmer"]
        assert "sampler" in data["normalized_mpki"]["hmmer"]
        assert "sampler" in data["speedup_gmean"]

    def test_export_json_writes_valid_json(self, comparison, tmp_path):
        path = tmp_path / "out.json"
        export_json(comparison, path)
        data = json.loads(path.read_text())
        assert data["kind"] == "single_thread_comparison"

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            to_dict(object())


class TestExportOtherKinds:
    @pytest.fixture(scope="class")
    def cache(self):
        return WorkloadCache(ExperimentConfig(scale=32, instructions=25_000))

    def test_accuracy_result_serializes(self, cache, tmp_path):
        from repro.harness import accuracy_experiment

        result = accuracy_experiment(cache, benchmarks=("hmmer",))
        data = to_dict(result)
        assert data["kind"] == "accuracy"
        assert "sampler" in data["mean_coverage"]
        export_json(result, tmp_path / "a.json")
        assert json.loads((tmp_path / "a.json").read_text())["kind"] == "accuracy"

    def test_efficiency_result_serializes(self, cache):
        from repro.harness import efficiency_experiment

        result = efficiency_experiment(cache, benchmark="hmmer")
        data = to_dict(result)
        assert data["kind"] == "efficiency"
        assert 0 <= data["lru_efficiency"] <= 1

    def test_multicore_result_serializes(self, cache):
        from repro.harness import multicore_comparison

        result = multicore_comparison(cache, ("sampler",), mixes=("mix1",))
        data = to_dict(result)
        assert data["kind"] == "multicore_comparison"
        assert "sampler" in data["normalized_weighted_speedup"]["mix1"]
        assert "sampler" in data["speedup_gmean"]
