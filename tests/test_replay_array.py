"""The array-native replay kernels: equivalence, eligibility, fallback.

The array path (:mod:`repro.sim.replay_array` over the
:mod:`repro.cache.soa` substrate) promises *result transparency*: for
every registered policy, a replay on the flat planes leaves behind the
same hit vector, the same :class:`CacheStats`, the same block contents,
the same per-set tag index, and the same policy-internal state (recency
stacks, PLRU trees, RRPV arrays, PSEL counters, RNG position) as the
object kernel.  These tests pin that promise three ways:

* golden equivalence on a deterministic mixed stream, full-state deep
  compare, for all eight registered policies;
* a hypothesis property test over random streams and policies;
* end-to-end sweep bit-identity with the kernel toggled on/off across
  the serial and parallel (shared-memory) harness paths.

Plus the eligibility matrix: every documented fallback reason must be
reported (and the object kernel actually used) for the replay shapes
the array path declines.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache, CacheAccess, CacheObserver
from repro.cache.geometry import CacheGeometry
from repro.replacement import (
    BIPPolicy,
    BRRIPPolicy,
    DIPPolicy,
    DRRIPPolicy,
    LRUPolicy,
    RandomPolicy,
    SHiPPolicy,
    SRRIPPolicy,
    TreePLRUPolicy,
)
from repro.sim.replay import replay
from repro.utils.rng import XorShift64
from repro.vvc.cache import VictimRelocationCache

GEOMETRY = CacheGeometry(size_bytes=16 * 4 * 64, associativity=4, block_bytes=64)

#: Every policy with a registered array kernel; fresh instance per path.
ARRAY_POLICIES = {
    "lru": lambda: LRUPolicy(),
    "plru": lambda: TreePLRUPolicy(),
    "srrip": lambda: SRRIPPolicy(rrpv_bits=2),
    "random": lambda: RandomPolicy(seed=0xDEADBEEF),
    "bip": lambda: BIPPolicy(epsilon_inverse=4),
    "dip": lambda: DIPPolicy(epsilon_inverse=4),
    "brrip": lambda: BRRIPPolicy(rrpv_bits=2, epsilon_inverse=4),
    "drrip": lambda: DRRIPPolicy(rrpv_bits=2, epsilon_inverse=4),
}


def make_stream(geometry, length=4000, write_frac=0.3, seed=7, seq_offset=0):
    """Deterministic mixed stream: reuse skew, conflicts, writes."""
    rng = XorShift64(seed)
    footprint = geometry.num_sets * geometry.associativity * 3
    accesses = []
    for position in range(length):
        block = rng.randrange(footprint)
        if rng.random() < 0.5:
            block = rng.randrange(max(1, footprint // 8))
        accesses.append(
            CacheAccess(
                address=block * geometry.block_bytes,
                pc=block & 0xFFFF,
                is_write=rng.random() < write_frac,
                seq=position + seq_offset,
                core=0,
            )
        )
    return accesses


def decompose(geometry, accesses):
    offset_bits = geometry.offset_bits
    index_mask = geometry.num_sets - 1
    set_indices = [(a.address >> offset_bits) & index_mask for a in accesses]
    tags = [(a.address >> offset_bits) >> geometry.index_bits for a in accesses]
    return set_indices, tags


def policy_state(policy):
    """Every array-kernel-touched policy internal, repr-compared."""
    state = {}
    for attr in (
        "_stacks", "_trees", "_rrpv", "psel", "psels", "_fill_count",
        "_set_role", "_leader_owner", "_leader_is_brrip",
    ):
        if hasattr(policy, attr):
            state[attr] = repr(getattr(policy, attr))
    rng = getattr(policy, "_rng", None)
    if rng is not None:
        state["_rng"] = rng._state
    return state


def block_state(cache):
    return [
        (
            block.valid, block.tag, block.dirty, block.predicted_dead,
            block.fill_seq, block.last_access_seq, block.access_count,
            dict(block.meta) if block.meta else {},
        )
        for blocks in cache.sets
        for block in blocks
    ]


def replay_both(policy_factory, geometry, accesses, monkeypatch):
    """Replay on the object then the array kernel; return both sides."""
    set_indices, tags = decompose(geometry, accesses)
    results = {}
    for mode in ("0", "1"):
        monkeypatch.setenv("REPRO_ARRAY_KERNEL", mode)
        cache = Cache(geometry, policy_factory())
        hits = replay(cache, accesses, set_indices, tags)
        results[mode] = (hits, cache)
    return results["0"], results["1"]


def assert_equivalent(object_side, array_side):
    object_hits, object_cache = object_side
    array_hits, array_cache = array_side
    assert array_cache.last_replay_kernel == "array", (
        f"array kernel declined: {array_cache.last_replay_fallback}"
    )
    assert object_cache.last_replay_kernel == "object"
    assert array_hits == object_hits
    assert array_cache.stats.snapshot() == object_cache.stats.snapshot()
    assert array_cache._tag_index == object_cache._tag_index
    assert block_state(array_cache) == block_state(object_cache)
    assert policy_state(array_cache.policy) == policy_state(object_cache.policy)


# ----------------------------------------------------------------------
# golden equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("write_frac", [0.0, 0.3])
@pytest.mark.parametrize("name", sorted(ARRAY_POLICIES))
def test_array_kernel_matches_object_kernel(name, write_frac, monkeypatch):
    accesses = make_stream(GEOMETRY, write_frac=write_frac)
    object_side, array_side = replay_both(
        ARRAY_POLICIES[name], GEOMETRY, accesses, monkeypatch
    )
    assert_equivalent(object_side, array_side)
    # The stream must actually exercise hits, evictions, and (when
    # writing) writebacks, or the equivalence is vacuous.
    stats = array_side[1].stats
    assert stats.hits > 0 and stats.misses > 0 and stats.evictions > 0
    if write_frac:
        assert stats.writebacks > 0


@pytest.mark.parametrize("name", ["lru", "drrip"])
def test_array_kernel_handles_stream_seq_offsets(name, monkeypatch):
    """seq != position streams hit the materializer's slow seq branch."""
    accesses = make_stream(GEOMETRY, length=2000, seq_offset=10_000)
    object_side, array_side = replay_both(
        ARRAY_POLICIES[name], GEOMETRY, accesses, monkeypatch
    )
    assert_equivalent(object_side, array_side)
    resident = [b for b in block_state(array_side[1]) if b[0]]
    assert resident and all(b[4] >= 10_000 for b in resident)


@given(
    seed=st.integers(0, 2**32 - 1),
    length=st.integers(64, 600),
    write_frac=st.sampled_from([0.0, 0.2, 0.6]),
    name=st.sampled_from(sorted(ARRAY_POLICIES)),
)
@settings(max_examples=60, deadline=None)
def test_array_kernel_equivalence_property(seed, length, write_frac, name):
    """Random streams, every policy: the kernels never diverge."""
    geometry = CacheGeometry(size_bytes=8 * 2 * 64, associativity=2)
    accesses = make_stream(
        geometry, length=length, write_frac=write_frac, seed=seed | 1
    )
    monkeypatch = pytest.MonkeyPatch()
    try:
        object_side, array_side = replay_both(
            ARRAY_POLICIES[name], geometry, accesses, monkeypatch
        )
    finally:
        monkeypatch.undo()
    assert_equivalent(object_side, array_side)


# ----------------------------------------------------------------------
# eligibility and fallback attribution
# ----------------------------------------------------------------------
STREAM = make_stream(GEOMETRY)
SET_INDICES, TAGS = decompose(GEOMETRY, STREAM)


def expect_fallback(cache, reason, accesses=STREAM,
                    set_indices=SET_INDICES, tags=TAGS):
    object_cache = Cache(GEOMETRY, LRUPolicy())
    expected = replay(object_cache, accesses, set_indices, tags)
    hits = replay(cache, accesses, set_indices, tags)
    assert cache.last_replay_kernel == "object"
    assert cache.last_replay_fallback == reason
    return hits, expected


def test_fallback_env_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_ARRAY_KERNEL", "0")
    cache = Cache(GEOMETRY, LRUPolicy())
    hits, expected = expect_fallback(cache, "disabled")
    assert hits == expected


def test_fallback_paranoid(monkeypatch):
    monkeypatch.setenv("REPRO_ARRAY_KERNEL", "1")
    cache = Cache(GEOMETRY, LRUPolicy(), paranoid=True)
    hits, expected = expect_fallback(cache, "paranoid")
    assert hits == expected


def test_fallback_no_decomposition(monkeypatch):
    monkeypatch.setenv("REPRO_ARRAY_KERNEL", "1")
    cache = Cache(GEOMETRY, LRUPolicy())
    hits, expected = expect_fallback(
        cache, "no-decomposition", set_indices=None, tags=None
    )
    assert hits == expected


def test_fallback_warm_cache(monkeypatch):
    """The first replay runs on the planes; a second one is warm."""
    monkeypatch.setenv("REPRO_ARRAY_KERNEL", "1")
    cache = Cache(GEOMETRY, LRUPolicy())
    replay(cache, STREAM, SET_INDICES, TAGS)
    assert cache.last_replay_kernel == "array"
    replay(cache, STREAM, SET_INDICES, TAGS)
    assert cache.last_replay_kernel == "object"
    assert cache.last_replay_fallback == "warm-cache"

    object_cache = Cache(GEOMETRY, LRUPolicy())
    monkeypatch.setenv("REPRO_ARRAY_KERNEL", "0")
    replay(object_cache, STREAM, SET_INDICES, TAGS)
    replay(object_cache, STREAM, SET_INDICES, TAGS)
    assert cache.stats.snapshot() == object_cache.stats.snapshot()
    assert block_state(cache) == block_state(object_cache)


def test_fallback_small_stream(monkeypatch):
    """Streams shorter than the frame count can't amortize the planes."""
    monkeypatch.setenv("REPRO_ARRAY_KERNEL", "1")
    short = STREAM[: GEOMETRY.num_sets * GEOMETRY.associativity - 1]
    cache = Cache(GEOMETRY, LRUPolicy())
    hits, expected = expect_fallback(
        cache, "small-stream", accesses=short,
        set_indices=SET_INDICES[: len(short)], tags=TAGS[: len(short)],
    )
    assert hits == expected


def test_fallback_unregistered_policy(monkeypatch):
    monkeypatch.setenv("REPRO_ARRAY_KERNEL", "1")
    cache = Cache(GEOMETRY, SHiPPolicy())
    replay(cache, STREAM, SET_INDICES, TAGS)
    assert cache.last_replay_kernel == "object"
    assert cache.last_replay_fallback == "policy:SHiPPolicy"


def test_fallback_thread_aware_drrip(monkeypatch):
    """The DRRIP kernel registers but declines multicore set dueling."""
    monkeypatch.setenv("REPRO_ARRAY_KERNEL", "1")
    cache = Cache(GEOMETRY, DRRIPPolicy(num_cores=2))
    replay(cache, STREAM, SET_INDICES, TAGS)
    assert cache.last_replay_kernel == "object"
    assert cache.last_replay_fallback == "thread-aware-drrip"


class _NullObserver(CacheObserver):
    pass


def test_fallback_observers(monkeypatch):
    monkeypatch.setenv("REPRO_ARRAY_KERNEL", "1")
    cache = Cache(GEOMETRY, LRUPolicy())
    cache.add_observer(_NullObserver())
    replay(cache, STREAM, SET_INDICES, TAGS)
    assert cache.last_replay_kernel == "object"
    assert cache.last_replay_fallback == "observers"


def test_fallback_cache_subclass(monkeypatch):
    monkeypatch.setenv("REPRO_ARRAY_KERNEL", "1")
    cache = VictimRelocationCache(GEOMETRY, LRUPolicy())
    replay(cache, STREAM, SET_INDICES, TAGS)
    assert cache.last_replay_kernel == "object"
    assert cache.last_replay_fallback == "cache-subclass"


def test_fallback_probe(monkeypatch):
    from repro.telemetry.probe import IntervalRecorder

    monkeypatch.setenv("REPRO_ARRAY_KERNEL", "1")
    cache = Cache(GEOMETRY, LRUPolicy(), probe=IntervalRecorder(epochs=4))
    hits = replay(cache, STREAM, SET_INDICES, TAGS)
    assert cache.last_replay_kernel == "object"
    assert cache.last_replay_fallback == "probe"

    object_cache = Cache(GEOMETRY, LRUPolicy())
    monkeypatch.setenv("REPRO_ARRAY_KERNEL", "0")
    assert hits == replay(object_cache, STREAM, SET_INDICES, TAGS)


# ----------------------------------------------------------------------
# end-to-end sweep bit-identity, kernel on vs off
# ----------------------------------------------------------------------
SWEEP_BENCHMARKS = ("mcf",)
SWEEP_TECHNIQUES = ("lru", "rrip")


def run_sweep(monkeypatch, array_kernel, **kwargs):
    from repro.harness.export import to_dict
    from repro.harness.parallel import parallel_single_thread_comparison
    from repro.harness.runner import ExperimentConfig

    monkeypatch.setenv("REPRO_ARRAY_KERNEL", "1" if array_kernel else "0")
    config = ExperimentConfig(instructions=30_000)
    comparison = parallel_single_thread_comparison(
        config, SWEEP_TECHNIQUES, SWEEP_BENCHMARKS, **kwargs
    )
    return to_dict(comparison)


def test_sweep_bit_identity_array_on_off_serial(monkeypatch):
    assert run_sweep(monkeypatch, True, jobs=1) == run_sweep(
        monkeypatch, False, jobs=1
    )


@pytest.mark.faults
def test_sweep_bit_identity_array_on_parallel_shm(monkeypatch):
    """Array kernel inside spawn workers with shared-memory streams must
    match the kernel-off serial sweep bit for bit.  (Workers inherit
    ``REPRO_ARRAY_KERNEL`` through ``os.environ`` at spawn.)"""
    parallel = run_sweep(monkeypatch, True, jobs=2, shared_memory=True)
    serial = run_sweep(monkeypatch, False, jobs=1)
    assert parallel == serial
