"""Tests for the skewed counter tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.skewed import SkewedCounterTable


class TestConstruction:
    def test_paper_configuration(self):
        tables = SkewedCounterTable()
        assert tables.num_tables == 3
        assert len(tables.tables[0]) == 4096
        assert tables.threshold == 8
        assert tables.counter_max == 3

    def test_paper_storage_is_3kb(self):
        # Table I: "3 x 1KB tables" = 3KB of predictor tables.
        tables = SkewedCounterTable()
        assert tables.storage_bits == 3 * 4096 * 2
        assert tables.storage_bits // 8 == 3 * 1024

    def test_rejects_zero_tables(self):
        with pytest.raises(ValueError):
            SkewedCounterTable(num_tables=0)

    def test_rejects_threshold_above_max_confidence(self):
        with pytest.raises(ValueError):
            SkewedCounterTable(num_tables=3, threshold=10)

    def test_rejects_non_power_of_two_entries(self):
        with pytest.raises(ValueError):
            SkewedCounterTable(entries_per_table=1000)


class TestPrediction:
    def test_untrained_signature_is_live(self):
        tables = SkewedCounterTable()
        assert not tables.predict(0x1234)
        assert tables.confidence(0x1234) == 0

    def test_three_dead_trainings_saturate_to_dead(self):
        tables = SkewedCounterTable()
        signature = 0x2BCD
        for _ in range(3):
            tables.train(signature, dead=True)
        # Three increments on three 2-bit counters = confidence 9 >= 8.
        assert tables.confidence(signature) == 9
        assert tables.predict(signature)

    def test_two_trainings_not_enough(self):
        # Confidence 6 < 8: the paper's threshold requires near-saturation.
        tables = SkewedCounterTable()
        signature = 0x2BCD
        tables.train(signature, dead=True)
        tables.train(signature, dead=True)
        assert tables.confidence(signature) == 6
        assert not tables.predict(signature)

    def test_live_training_reverses_dead(self):
        tables = SkewedCounterTable()
        signature = 0x7FFF
        for _ in range(5):
            tables.train(signature, dead=True)
        tables.train(signature, dead=False)
        assert not tables.predict(signature)  # confidence 6 < 8

    def test_counters_saturate_both_ends(self):
        tables = SkewedCounterTable()
        signature = 0x0042
        for _ in range(100):
            tables.train(signature, dead=True)
        assert tables.confidence(signature) == 9
        for _ in range(100):
            tables.train(signature, dead=False)
        assert tables.confidence(signature) == 0

    def test_single_table_configuration(self):
        tables = SkewedCounterTable(num_tables=1, entries_per_table=16384, threshold=2)
        signature = 0x1111
        tables.train(signature, dead=True)
        assert not tables.predict(signature)
        tables.train(signature, dead=True)
        assert tables.predict(signature)

    def test_nine_confidence_levels(self):
        """Paper Section III-E: three tables give confidence 0..9."""
        tables = SkewedCounterTable()
        signature = 0x0A0A
        seen = set()
        for _ in range(10):
            seen.add(tables.confidence(signature))
            tables.train(signature, dead=True)
        assert seen == {0, 3, 6, 9}  # one aligned signature steps by 3


class TestInterferenceResistance:
    def test_skew_localizes_aliasing(self):
        """Train one signature dead; a signature that collides with it in
        table 0 must not be dragged to a dead prediction."""
        from repro.utils.hashing import skewed_hash

        tables = SkewedCounterTable()
        victim = 0x1234
        alias = next(
            candidate
            for candidate in range(1, 1 << 15)
            if candidate != victim
            and skewed_hash(candidate, 0, 12) == skewed_hash(victim, 0, 12)
            and skewed_hash(candidate, 1, 12) != skewed_hash(victim, 1, 12)
        )
        for _ in range(10):
            tables.train(victim, dead=True)
        assert tables.predict(victim)
        assert not tables.predict(alias)
        assert tables.confidence(alias) <= 3  # at most the one shared bank


@settings(max_examples=50, deadline=None)
@given(
    signature=st.integers(min_value=0, max_value=2**15 - 1),
    operations=st.lists(st.booleans(), max_size=60),
)
def test_confidence_always_in_range(signature, operations):
    """Property: confidence stays within [0, 9] under any training string."""
    tables = SkewedCounterTable()
    for dead in operations:
        tables.train(signature, dead=dead)
        assert 0 <= tables.confidence(signature) <= 9
