"""Load-simulator tests: engine, arrivals, determinism, golden pins.

The subsystem's contract (docs/loadsim.md): a run is a pure function of
``(tenants, arrival specs, seed, technique)``.  The hypothesis property
pins that byte-for-byte -- identical inputs give identical event-log
digests and latency series, distinct seeds give distinct logs -- and a
golden test with metronome (``uniform``) arrivals pins the nearest-rank
latency percentiles of a fixed scenario to exact values.
"""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.experiments import loadsim_experiment
from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.loadsim import (
    ArrivalSpecError,
    EventLoop,
    LoadScenario,
    TenantSpec,
    parse_arrival_spec,
    prepare_scenario,
    resolve_tenant_specs,
    split_specs,
    write_csv,
    write_ndjson,
)
from repro.utils.rng import XorShift64

pytestmark = pytest.mark.loadsim

#: One tiny machine + workload set shared by every test in the module
#: (trace generation dominates the cost; the simulations are cheap).
CONFIG = ExperimentConfig(scale=32, instructions=8_000, seed=1, num_cores=2)
_CACHE = None


def workload_cache() -> WorkloadCache:
    global _CACHE
    if _CACHE is None:
        _CACHE = WorkloadCache(CONFIG)
    return _CACHE


def small_scenario(seed: int = 5, arrival: str = "poisson(rate=1)",
                   duration: float = 30_000.0) -> LoadScenario:
    return LoadScenario(
        tenants=(
            TenantSpec(workload="zipf(a=1.2)", arrival=arrival),
            TenantSpec(workload="hotspot", arrival=arrival),
        ),
        duration=duration,
        seed=seed,
        epochs=4,
    )


# ----------------------------------------------------------------------
# event-loop engine
# ----------------------------------------------------------------------
class TestEventLoop:
    def test_processes_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(30.0, lambda t: fired.append(("c", t)))
        loop.schedule_at(10.0, lambda t: fired.append(("a", t)))
        loop.schedule_at(20.0, lambda t: fired.append(("b", t)))
        assert loop.run() == 3
        assert fired == [("a", 10.0), ("b", 20.0), ("c", 30.0)]
        assert loop.now == 30.0

    def test_ties_break_by_scheduling_order(self):
        loop = EventLoop()
        fired = []
        for name in "abcde":
            loop.schedule_at(7.0, lambda t, n=name: fired.append(n))
        loop.run()
        assert fired == list("abcde")

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        fired = []

        def chain(time):
            fired.append(time)
            if time < 3.0:
                loop.schedule_after(1.0, chain)

        loop.schedule_at(1.0, chain)
        assert loop.run() == 3
        assert fired == [1.0, 2.0, 3.0]

    def test_scheduling_in_the_past_raises(self):
        loop = EventLoop()
        loop.schedule_at(5.0, lambda t: loop.schedule_at(1.0, lambda u: None))
        with pytest.raises(ValueError, match="before current time"):
            loop.run()
        with pytest.raises(ValueError, match="negative event delay"):
            loop.schedule_after(-1.0, lambda t: None)

    def test_len_counts_pending(self):
        loop = EventLoop()
        assert len(loop) == 0
        loop.schedule_at(1.0, lambda t: None)
        loop.schedule_at(2.0, lambda t: None)
        assert len(loop) == 2
        loop.run()
        assert len(loop) == 0
        assert loop.processed == 2


# ----------------------------------------------------------------------
# arrival processes and spec parsing
# ----------------------------------------------------------------------
class TestArrivals:
    def test_canonical_specs(self):
        assert parse_arrival_spec("poisson").spec == "poisson(rate=2)"
        assert parse_arrival_spec("poisson(rate=0.5)").spec == "poisson(rate=0.5)"
        assert parse_arrival_spec(" uniform( rate=4 ) ").spec == "uniform(rate=4)"
        assert (
            parse_arrival_spec("bursty(burst=4,rate=1)").spec
            == "bursty(rate=1,burst=4,on=2000,off=8000)"
        )

    def test_unknown_family_and_params_raise(self):
        with pytest.raises(ArrivalSpecError, match="unknown arrival family"):
            parse_arrival_spec("pareto(rate=1)")
        with pytest.raises(ArrivalSpecError, match="unknown parameter"):
            parse_arrival_spec("poisson(burst=2)")
        with pytest.raises(ArrivalSpecError, match="must be a number"):
            parse_arrival_spec("poisson(rate=fast)")
        with pytest.raises(ArrivalSpecError, match="malformed"):
            parse_arrival_spec("poisson(rate=1")
        with pytest.raises(ArrivalSpecError, match="rate must be positive"):
            parse_arrival_spec("poisson(rate=0)")
        with pytest.raises(ArrivalSpecError, match="burst multiplier"):
            parse_arrival_spec("bursty(burst=0.5)")

    def test_uniform_is_a_metronome(self):
        process = parse_arrival_spec("uniform(rate=4)")
        rng = XorShift64(1)
        assert [process.next_gap(rng) for _ in range(3)] == [250.0] * 3

    def test_random_processes_are_seed_deterministic(self):
        for spec in ("poisson(rate=2)", "bursty(rate=1,burst=8)"):
            first = parse_arrival_spec(spec)
            second = parse_arrival_spec(spec)
            gaps_a = [first.next_gap(XorShift64(9)) for _ in range(1)]
            # fresh processes + equal rng streams -> equal gap streams
            rng_a, rng_b = XorShift64(9), XorShift64(9)
            first, second = parse_arrival_spec(spec), parse_arrival_spec(spec)
            gaps_a = [first.next_gap(rng_a) for _ in range(50)]
            gaps_b = [second.next_gap(rng_b) for _ in range(50)]
            assert gaps_a == gaps_b
            assert all(gap > 0 for gap in gaps_a)

    def test_split_specs_respects_parens(self):
        assert split_specs("zipf(a=1.2,seed=7),mcf, hotspot ") == [
            "zipf(a=1.2,seed=7)", "mcf", "hotspot",
        ]
        assert split_specs("") == []
        assert split_specs("poisson(rate=1)") == ["poisson(rate=1)"]

    def test_resolve_tenant_specs(self):
        tenants = resolve_tenant_specs("3")
        assert [t.workload for t in tenants] == ["zipf(a=1.2)", "bursty", "hotspot"]
        assert len({t.arrival for t in tenants}) == 1
        tenants = resolve_tenant_specs(
            "mcf,zipf(a=0.9)", "poisson(rate=1),uniform(rate=2)"
        )
        assert [(t.workload, t.arrival) for t in tenants] == [
            ("mcf", "poisson(rate=1)"), ("zipf(a=0.9)", "uniform(rate=2)"),
        ]
        with pytest.raises(ValueError, match="arrival specs for"):
            resolve_tenant_specs("3", "poisson,uniform")
        with pytest.raises(ValueError, match="count must be >= 1"):
            resolve_tenant_specs("0")


# ----------------------------------------------------------------------
# the determinism contract
# ----------------------------------------------------------------------
class TestDeterminism:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=1, max_value=2**16),
        rate=st.sampled_from(["0.5", "1", "2"]),
        technique=st.sampled_from(["sampler", "lru"]),
    )
    def test_identical_inputs_identical_run(self, seed, rate, technique):
        scenario = small_scenario(seed=seed, arrival=f"poisson(rate={rate})")
        prepared = prepare_scenario(workload_cache(), scenario)
        first = prepared.run(technique)
        second = prepared.run(technique)
        assert first.events == second.events
        assert first.event_log_digest() == second.event_log_digest()
        assert first.latency_series == second.latency_series
        assert first.to_dict() == second.to_dict()

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=1, max_value=2**16))
    def test_distinct_seeds_distinct_logs(self, seed):
        prepared_a = prepare_scenario(workload_cache(), small_scenario(seed=seed))
        prepared_b = prepare_scenario(
            workload_cache(), small_scenario(seed=seed + 1)
        )
        run_a = prepared_a.run("lru")
        run_b = prepared_b.run("lru")
        assert run_a.event_log_digest() != run_b.event_log_digest()

    def test_arrivals_are_technique_independent(self):
        prepared = prepare_scenario(workload_cache(), small_scenario())
        sampler = prepared.run("sampler")
        lru = prepared.run("lru")
        arr = [e for e in sampler.events if e[0] == "arr"]
        assert arr == [e for e in lru.events if e[0] == "arr"]
        assert [t.arrived for t in sampler.tenants] == [
            t.arrived for t in lru.tenants
        ]
        assert sampler.llc_stats.accesses == lru.llc_stats.accesses

    def test_optimal_is_rejected(self):
        prepared = prepare_scenario(workload_cache(), small_scenario())
        with pytest.raises(ValueError, match="future access stream"):
            prepared.run("optimal")


# ----------------------------------------------------------------------
# the golden scenario: metronome arrivals, pinned percentiles
# ----------------------------------------------------------------------
def golden_result(technique: str = "lru"):
    scenario = LoadScenario(
        tenants=(TenantSpec(workload="seq", arrival="uniform(rate=0.2)"),),
        duration=60_000.0,
        seed=3,
        ops=16,
        epochs=4,
    )
    return prepare_scenario(workload_cache(), scenario).run(technique)


class TestGoldenScenario:
    """``uniform`` draws nothing from the RNG and ``seq`` misses every
    LLC access on its first pass, so every latency in this scenario is
    exact integer arithmetic: 12 arrivals, 5000-cycle gaps, 16 misses
    x 200 cycles = 3200 cycles service, no queueing.  Any change to the
    latency accounting, the percentile definition, or the event
    ordering moves these numbers."""

    def test_pinned_percentiles(self):
        result = golden_result()
        assert sum(t.arrived for t in result.tenants) == 11
        assert result.latency_series == [3200.0] * 11
        assert result.p50 == 3200.0
        assert result.p95 == 3200.0
        assert result.p99 == 3200.0
        assert result.mean_latency == 3200.0
        assert result.fairness == 1.0
        assert result.llc_stats.miss_rate == 1.0

    def test_pinned_tenant_counters(self):
        result = golden_result()
        tenant = result.tenants[0]
        assert tenant.llc_accesses == 11 * 16
        assert tenant.llc_misses == 11 * 16
        # seq retires 5 instructions per LLC access (gap 4 + the access)
        assert tenant.instructions == 11 * 16 * 5
        assert tenant.mpki == 200.0
        assert tenant.throughput == pytest.approx(11 / 60.0)

    def test_golden_digest_stable_across_techniques(self):
        # seq's first pass misses everywhere under any policy, so even
        # the completion events agree here.
        assert (
            golden_result("lru").event_log_digest()
            == golden_result("sampler").event_log_digest()
        )


# ----------------------------------------------------------------------
# harness + exporters + telemetry integration
# ----------------------------------------------------------------------
class TestIntegration:
    def test_loadsim_experiment_matches_direct_run(self):
        scenario = small_scenario(seed=11)
        comparison = loadsim_experiment(
            workload_cache(), scenario, ("sampler", "lru")
        )
        direct = prepare_scenario(workload_cache(), scenario).run("sampler")
        assert comparison.results["sampler"].to_dict() == direct.to_dict()
        rows = comparison.rows()
        assert rows[0][0] == "technique"
        assert [row[0] for row in rows[1:]] == ["sampler", "lru"]
        tenant_rows = comparison.tenant_rows()
        assert len(tenant_rows) == 1 + len(scenario.tenants)

    def test_interval_series_convention(self):
        result = prepare_scenario(workload_cache(), small_scenario()).run("lru")
        recorder = result.recorder
        assert recorder.context["technique"] == "lru"
        assert recorder.context["tenants"] == 2
        assert len(recorder.samples) == 4
        assert sum(s.accesses for s in recorder.samples) == (
            result.llc_stats.accesses
        )
        assert recorder.samples[-1].end == result.llc_stats.accesses
        # positions are cumulative LLC access counts, monotonically
        # non-decreasing across epoch boundaries
        ends = [s.end for s in recorder.samples]
        assert ends == sorted(ends)

    def test_ndjson_roundtrip(self):
        result = prepare_scenario(workload_cache(), small_scenario()).run("lru")
        buffer = io.StringIO()
        write_ndjson(result, buffer)
        rows = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert rows[0]["kind"] == "loadsim"
        assert rows[0]["event_log_digest"] == result.event_log_digest()
        kinds = [row["kind"] for row in rows]
        assert kinds.count("tenant") == 2
        assert kinds.count("epoch") == len(result.recorder.samples)

    def test_csv_has_one_row_per_tenant(self):
        result = prepare_scenario(workload_cache(), small_scenario()).run("lru")
        buffer = io.StringIO()
        write_csv(result, buffer)
        lines = buffer.getvalue().strip().splitlines()
        assert lines[0].startswith("workload,arrival,arrived")
        assert len(lines) == 1 + 2

    def test_scenario_validation(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            LoadScenario(tenants=())
        with pytest.raises(ValueError, match="duration must be positive"):
            LoadScenario(
                tenants=(TenantSpec("seq", "poisson"),), duration=0.0
            )
        with pytest.raises(ValueError, match="epochs must be >= 1"):
            LoadScenario(
                tenants=(TenantSpec("seq", "poisson"),), epochs=0
            )
