"""Tests for Belady MIN + optimal bypass."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import Cache, CacheAccess
from repro.replacement import LRUPolicy, OptimalPolicy, annotate_next_use
from repro.replacement.optimal import NEVER

from tests.conftest import make_access, replay, tiny_geometry


def build_stream(block_numbers, geometry):
    return [
        make_access(number, geometry, seq=seq)
        for seq, number in enumerate(block_numbers)
    ]


def run_optimal(block_numbers, sets=1, assoc=2, bypass=True):
    geometry = tiny_geometry(sets=sets, assoc=assoc)
    stream = build_stream(block_numbers, geometry)
    next_use = annotate_next_use(stream, geometry)
    cache = Cache(geometry, OptimalPolicy(next_use, bypass=bypass))
    hits = [cache.access(access) for access in stream]
    return cache, hits


def run_lru(block_numbers, sets=1, assoc=2):
    cache = Cache(tiny_geometry(sets=sets, assoc=assoc), LRUPolicy())
    return cache, replay(cache, block_numbers)


class TestAnnotateNextUse:
    def test_simple_chain(self):
        geometry = tiny_geometry()
        stream = build_stream([0, 1, 0, 1, 0], geometry)
        next_use = annotate_next_use(stream, geometry)
        assert next_use == [2, 3, 4, NEVER, NEVER]

    def test_never_reused(self):
        geometry = tiny_geometry()
        stream = build_stream([0, 1, 2], geometry)
        assert annotate_next_use(stream, geometry) == [NEVER] * 3

    def test_empty_stream(self):
        geometry = tiny_geometry()
        assert annotate_next_use([], geometry) == []

    def test_offset_within_block_shares_next_use(self):
        geometry = tiny_geometry()
        stream = [
            CacheAccess(address=0, pc=0, seq=0),
            CacheAccess(address=32, pc=0, seq=1),  # same 64B block
        ]
        assert annotate_next_use(stream, geometry) == [1, NEVER]


class TestBeladyChoices:
    def test_evicts_farthest_future(self):
        # Set: {0, 1}; access 2 arrives; 0 is used next, 1 much later.
        _, hits = run_optimal([0, 1, 2, 0, 2, 0, 1])
        # MIN keeps 0, and with bypass may refuse 2 only if its next use is
        # farther than both residents -- here 2 is used at 4, sooner than 1
        # at 6, so 2 is placed, evicting 1.
        assert hits == [False, False, False, True, True, True, False]

    def test_bypass_refuses_distant_block(self):
        # Residents 0 (next at 3) and 1 (next at 4); 2 is never used again.
        cache, hits = run_optimal([0, 1, 2, 0, 1])
        assert hits == [False, False, False, True, True]
        assert cache.stats.bypasses == 1

    def test_no_bypass_when_free_frame(self):
        cache, _ = run_optimal([0], assoc=2)
        assert cache.stats.bypasses == 0
        assert cache.contains(0)

    def test_bypass_disabled_places_everything(self):
        cache, _ = run_optimal([0, 1, 2, 0, 1], bypass=False)
        assert cache.stats.bypasses == 0

    def test_lru_pathological_case(self):
        """Cyclic working set of assoc+1: LRU gets zero hits, MIN hits a lot."""
        pattern = [0, 1, 2] * 20
        _, lru_hits = run_lru(pattern, assoc=2)
        _, optimal_hits = run_optimal(pattern, assoc=2)
        assert sum(lru_hits) == 0
        assert sum(optimal_hits) >= len(pattern) // 3


@settings(max_examples=60, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=250),
    assoc=st.sampled_from([1, 2, 4]),
)
def test_optimal_never_worse_than_lru(blocks, assoc):
    """Property: MIN+bypass produces no more misses than LRU on any access
    string (Belady optimality; bypass can only help further)."""
    _, lru_hits = run_lru(blocks, sets=2, assoc=assoc)
    _, optimal_hits = run_optimal(blocks, sets=2, assoc=assoc)
    assert sum(optimal_hits) >= sum(lru_hits)


@settings(max_examples=40, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=150),
)
def test_optimal_bypass_never_worse_than_plain_min(blocks):
    """Property: adding the bypass rule never increases misses over MIN."""
    _, plain = run_optimal(blocks, sets=1, assoc=2, bypass=False)
    _, bypass = run_optimal(blocks, sets=1, assoc=2, bypass=True)
    assert sum(bypass) >= sum(plain)


@settings(max_examples=30, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=60),
)
def test_optimal_matches_exhaustive_search_on_tiny_cases(blocks):
    """Property: on a 1-set, 2-way cache, MIN's hit count equals the best
    achievable by exhaustive search over all eviction/bypass choices."""
    geometry = tiny_geometry(sets=1, assoc=2)
    stream = [geometry.block_address(b * 64) for b in blocks]
    memo = {}

    def best(position, resident):
        if position == len(stream):
            return 0
        key = (position, resident)
        if key in memo:
            return memo[key]
        block = stream[position]
        if block in resident:
            result = 1 + best(position + 1, resident)
        else:
            options = []
            if len(resident) < 2:
                options.append(best(position + 1, resident | {block}))
            else:
                options.append(best(position + 1, resident))  # bypass
                for victim in resident:
                    options.append(
                        best(position + 1, (resident - {victim}) | {block})
                    )
            result = max(options)
        memo[key] = result
        return result

    _, hits = run_optimal(blocks, sets=1, assoc=2)
    assert sum(hits) == best(0, frozenset())
