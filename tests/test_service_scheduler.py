"""The deduplicating scheduler (:mod:`repro.service.scheduler`).

Drives the scheduler directly -- no HTTP -- against real cell
executions at a tiny instruction budget.  Pins admission validation,
the three dedup layers (in-flight attach, done-this-life, checkpoint
store), bounded-queue backpressure, fair-share ordering, cancellation,
and the drain / restart-resume lifecycle.

Tests that execute cells are ``@pytest.mark.service`` (hard per-test
deadline, see ``tests/conftest.py``); pure-admission tests construct
the scheduler with ``start=False`` so nothing ever runs.
"""

from __future__ import annotations

import time

import pytest

from repro.harness.checkpoint import CheckpointStore
from repro.harness.runner import ExperimentConfig
from repro.service.jobs import QueueFull
from repro.service.scheduler import ExperimentScheduler

CONFIG = ExperimentConfig(instructions=20_000)


def make_scheduler(tmp_path, **kwargs) -> ExperimentScheduler:
    kwargs.setdefault("jobs", 1)  # serial in-dispatcher path: no pools
    kwargs.setdefault("stream_cache", None)
    return ExperimentScheduler(tmp_path / "service", **kwargs)


def wait_terminal(scheduler, job_id, timeout=90.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = scheduler.get(job_id)
        if job.is_terminal:
            return job
        time.sleep(0.05)
    raise TimeoutError(f"job {job_id} still {scheduler.get(job_id).state}")


class TestAdmission:
    def test_unknown_benchmark_and_technique_rejected(self, tmp_path):
        scheduler = make_scheduler(tmp_path, start=False)
        try:
            with pytest.raises(ValueError, match="unknown workload"):
                scheduler.submit(CONFIG, ["notabench"], [], sweep=True)
            with pytest.raises(ValueError, match="unknown technique"):
                scheduler.submit(CONFIG, ["mcf"], ["notatech"], sweep=True)
        finally:
            scheduler.close(timeout=5.0)

    def test_cell_submission_shape(self, tmp_path):
        scheduler = make_scheduler(tmp_path, start=False)
        try:
            with pytest.raises(ValueError, match="exactly one benchmark"):
                scheduler.submit(CONFIG, ["mcf", "perlbench"], [])
            job = scheduler.submit(CONFIG, ["mcf"], [])  # LRU baseline cell
            assert job.kind == "cell" and job.cells == (("mcf", None),)
        finally:
            scheduler.close(timeout=5.0)

    def test_sweep_expands_the_full_grid(self, tmp_path):
        scheduler = make_scheduler(tmp_path, start=False)
        try:
            job = scheduler.submit(
                CONFIG, ["perlbench", "mcf"], ["rrip"], sweep=True
            )
            assert job.kind == "sweep"
            # Per benchmark: the LRU baseline plus one cell per technique.
            assert set(job.cells) == {
                ("perlbench", None), ("perlbench", "rrip"),
                ("mcf", None), ("mcf", "rrip"),
            }
        finally:
            scheduler.close(timeout=5.0)

    def test_bounded_queue_raises_queue_full(self, tmp_path):
        scheduler = make_scheduler(tmp_path, start=False, queue_depth=1)
        try:
            scheduler.submit(CONFIG, ["mcf"], [])
            with pytest.raises(QueueFull, match="queue at capacity"):
                scheduler.submit(CONFIG, ["perlbench"], [])
            # Resubmitting the *queued* cell is an in-flight dedup hit,
            # not new load: it must be admitted despite the full queue.
            attached = scheduler.submit(CONFIG, ["mcf"], [])
            assert attached.dedup_cells == 1
        finally:
            scheduler.close(timeout=5.0)

    def test_draining_scheduler_refuses_submissions(self, tmp_path):
        scheduler = make_scheduler(tmp_path, start=False)
        scheduler.drain(timeout=5.0)
        with pytest.raises(RuntimeError, match="draining"):
            scheduler.submit(CONFIG, ["mcf"], [])


class TestFairShare:
    def test_starved_client_is_picked_first(self, tmp_path):
        scheduler = make_scheduler(tmp_path, start=False)
        try:
            scheduler.submit(CONFIG, ["mcf"], [], client="bulk")
            scheduler.submit(CONFIG, ["perlbench"], [], client="interactive")
            # "bulk" has already had many cells dispatched this life;
            # at equal priority the batch must lead with "interactive"
            # despite its later submission seq.
            scheduler._served["bulk"] = 50
            _, batch = scheduler._pick_batch()
            assert [entry.client for entry in batch] == ["interactive", "bulk"]
        finally:
            scheduler.close(timeout=5.0)

    def test_priority_beats_fair_share(self, tmp_path):
        scheduler = make_scheduler(tmp_path, start=False)
        try:
            scheduler.submit(CONFIG, ["mcf"], [], client="bulk", priority=-1)
            scheduler.submit(CONFIG, ["perlbench"], [], client="interactive")
            scheduler._served["bulk"] = 50
            _, batch = scheduler._pick_batch()
            assert batch[0].client == "bulk"  # lower number = higher priority
        finally:
            scheduler.close(timeout=5.0)


class TestCancellation:
    def test_cancel_queued_job_empties_its_cells(self, tmp_path):
        scheduler = make_scheduler(tmp_path, start=False)
        try:
            job = scheduler.submit(CONFIG, ["mcf"], [])
            assert scheduler.stats()["queue"]["depth"] == 1
            cancelled = scheduler.cancel(job.id)
            assert cancelled.state == "cancelled"
            assert scheduler.stats()["queue"]["depth"] == 0
            events, terminal = scheduler.events_since(job.id)
            assert terminal
            assert events[-1]["event"] == "sweep_finished"
            assert events[-1]["status"] == "cancelled"
            # Cancel is idempotent; unknown jobs raise.
            assert scheduler.cancel(job.id).state == "cancelled"
            with pytest.raises(KeyError):
                scheduler.cancel("job-nope")
        finally:
            scheduler.close(timeout=5.0)

    def test_cancel_spares_cells_another_job_shares(self, tmp_path):
        scheduler = make_scheduler(tmp_path, start=False)
        try:
            first = scheduler.submit(CONFIG, ["mcf"], [])
            second = scheduler.submit(CONFIG, ["mcf"], [])  # attaches
            scheduler.cancel(second.id)
            # The shared cell stays queued for the surviving job.
            assert scheduler.stats()["queue"]["depth"] == 1
            assert scheduler.get(first.id).state == "queued"
        finally:
            scheduler.close(timeout=5.0)


@pytest.mark.service
class TestExecution:
    def test_cell_job_runs_to_done_with_result(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        try:
            job = scheduler.submit(CONFIG, ["perlbench"], ["rrip"])
            final = wait_terminal(scheduler, job.id)
            assert final.state == "done"
            result = scheduler.result(job.id)
            assert result["kind"] == "cell"
            assert result["benchmark"] == "perlbench"
            assert result["technique"] == "rrip"
            assert result["llc"]["accesses"] > 0
            # The cell landed in the shared checkpoint store, where a
            # CLI sweep over the same directory would find it.
            assert scheduler.checkpoint.load(CONFIG, "perlbench", "rrip") is not None
            # Events tell the standard sweep story.
            events, terminal = scheduler.events_since(job.id)
            kinds = [event["event"] for event in events]
            assert terminal
            assert kinds[0] == "sweep_started" and kinds[-1] == "sweep_finished"
            assert "cell_finished" in kinds
        finally:
            scheduler.close(timeout=30.0)

    def test_result_gates_on_done(self, tmp_path):
        scheduler = make_scheduler(tmp_path, start=False)
        try:
            job = scheduler.submit(CONFIG, ["perlbench"], [])
            with pytest.raises(RuntimeError, match="not done"):
                scheduler.result(job.id)
            with pytest.raises(KeyError):
                scheduler.result("job-nope")
        finally:
            scheduler.close(timeout=5.0)

    def test_two_submissions_one_execution(self, tmp_path):
        # The dedup acceptance criterion: same cell twice -> both jobs
        # done, exactly one execution, hits visible in stats.
        scheduler = make_scheduler(tmp_path)
        try:
            first = scheduler.submit(CONFIG, ["perlbench"], ["rrip"])
            second = scheduler.submit(CONFIG, ["perlbench"], ["rrip"])
            assert wait_terminal(scheduler, first.id).state == "done"
            assert wait_terminal(scheduler, second.id).state == "done"
            stats = scheduler.stats()
            assert stats["cells"]["executed"] == 1
            hits = (stats["dedup"]["checkpoint_hits"]
                    + stats["dedup"]["inflight_hits"])
            assert hits == 1
            assert stats["dedup"]["hit_rate"] == pytest.approx(0.5)
            assert scheduler.result(first.id) == scheduler.result(second.id)
        finally:
            scheduler.close(timeout=30.0)

    def test_checkpointed_cell_completes_instantly(self, tmp_path):
        # A cell computed in a previous scheduler life (or by a CLI
        # sweep into the same store) satisfies a new job without the
        # dispatcher ever seeing it.
        first = make_scheduler(tmp_path)
        try:
            job = first.submit(CONFIG, ["perlbench"], [])
            assert wait_terminal(first, job.id).state == "done"
        finally:
            first.close(timeout=30.0)

        second = make_scheduler(tmp_path, start=False)  # never dispatches
        try:
            job = second.submit(CONFIG, ["perlbench"], [])
            assert job.state == "done"  # done at admission
            assert job.dedup_cells == 1
            assert second.stats()["dedup"]["checkpoint_hits"] == 1
            assert second.result(job.id)["kind"] == "cell"
        finally:
            second.close(timeout=5.0)

    def test_drain_persists_queue_and_restart_resumes(self, tmp_path):
        # Life 1 never dispatches: the job drains out still queued.
        first = make_scheduler(tmp_path, start=False)
        job = first.submit(CONFIG, ["perlbench"], ["rrip"])
        assert first.drain(timeout=5.0)
        assert first.get(job.id).state == "queued"

        # Life 2 over the same job store resumes and completes it.
        second = make_scheduler(tmp_path)
        try:
            resumed = second.get(job.id)
            assert resumed is not None
            final = wait_terminal(second, job.id)
            assert final.state == "done"
            assert second.result(job.id)["benchmark"] == "perlbench"
        finally:
            second.close(timeout=30.0)
