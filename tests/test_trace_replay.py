"""Trace replay and the trace library: round-trips, diagnostics, keys.

The replay path's promise is that an imported trace behaves exactly
like a built-in benchmark *and* that its identity is its content: the
canonical spec pins a digest, the digest folds into the stream-store
key, and re-importing different bytes under the same library name can
never silently reuse stale cached state.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.sim.traceio import save_trace
from repro.workloads import (
    TraceLibrary,
    TraceReplayWorkload,
    WorkloadSpecError,
    ZipfianPattern,
    trace_content_digest,
)

pytestmark = pytest.mark.workloads

LLC_BYTES = 32 * 1024
TINY = ExperimentConfig(scale=32, instructions=20_000, seed=3)


@pytest.fixture(autouse=True)
def _isolate_trace_lib(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_LIB", str(tmp_path / "lib"))


def make_trace(seed=1, instructions=4_000):
    return ZipfianPattern(a=1.2, seed=seed).generate(instructions, LLC_BYTES)


class TestRoundTrip:
    @pytest.mark.parametrize("suffix", [".trace", ".trace.gz"])
    def test_import_round_trips_text_and_gzip(self, tmp_path, suffix):
        trace = make_trace()
        path = tmp_path / f"sample{suffix}"
        save_trace(trace, path)
        library = TraceLibrary()
        entry = library.import_file(path, name="sample")
        assert entry["records"] == len(trace.records)
        assert entry["instructions"] == trace.instructions
        loaded = library.load("sample")
        assert loaded.records == trace.records
        assert loaded.instructions == trace.instructions

    def test_plain_and_gzip_content_share_one_digest(self, tmp_path):
        trace = make_trace()
        save_trace(trace, tmp_path / "a.trace")
        save_trace(trace, tmp_path / "b.trace.gz")
        library = TraceLibrary()
        first = library.import_file(tmp_path / "a.trace", name="one")
        second = library.import_file(tmp_path / "b.trace.gz", name="two")
        assert first["digest"] == second["digest"]
        # Content addressing: both names point at a single blob.
        assert library.blob_path(str(first["digest"])).exists()

    def test_replay_spec_round_trips_through_the_suite(self, tmp_path):
        from repro.workloads import parse_workload_spec, resolve_workload

        trace = make_trace()
        save_trace(trace, tmp_path / "w.trace")
        TraceLibrary().import_file(tmp_path / "w.trace", name="webapp")
        generator = resolve_workload("trace(webapp)")
        assert isinstance(generator, TraceReplayWorkload)
        spec = generator.spec()
        assert spec.startswith("trace(name=webapp,digest=")
        reparsed = parse_workload_spec(spec)
        assert reparsed.name == generator.name

    def test_direct_file_reference_without_library(self, tmp_path):
        from repro.workloads import resolve_workload

        trace = make_trace()
        path = tmp_path / "direct.trace.gz"
        save_trace(trace, path)
        generator = resolve_workload(f"trace(file={path})")
        replayed = generator.generate(trace.instructions, LLC_BYTES)
        assert replayed.records == trace.records


class TestBudgetShaping:
    def test_truncate_and_loop(self, tmp_path):
        trace = make_trace(instructions=8_000)
        save_trace(trace, tmp_path / "t.trace")
        library = TraceLibrary()
        library.import_file(tmp_path / "t.trace", name="t")

        short = TraceReplayWorkload("t", library=library).generate(
            2_000, LLC_BYTES
        )
        assert len(short.records) < len(trace.records)
        assert short.instructions == 2_000

        looped = TraceReplayWorkload("t", loop=True, library=library).generate(
            trace.instructions * 3, LLC_BYTES
        )
        assert len(looped.records) > len(trace.records) * 2
        assert looped.instructions >= trace.instructions * 3

        padded = TraceReplayWorkload("t", library=library).generate(
            trace.instructions * 3, LLC_BYTES
        )
        # Truncation mode on a short trace: full record list, with the
        # leftover budget accounted as trailing compute.
        assert len(padded.records) == len(trace.records)
        assert padded.instructions == trace.instructions * 3


class TestImportDiagnostics:
    def test_truncated_final_record_is_diagnosed(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "cut.trace"
        save_trace(trace, path)
        text = path.read_text(encoding="ascii")
        path.write_text(text[: len(text) - 7], encoding="ascii")
        with pytest.raises(ValueError, match="truncated final record"):
            TraceLibrary().import_file(path, name="cut")

    def test_truncated_gzip_stream_is_diagnosed(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "cut.trace.gz"
        save_trace(trace, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 9])
        with pytest.raises(ValueError, match="truncated gzip stream"):
            TraceLibrary().import_file(path, name="cut")

    def test_bad_header_is_diagnosed(self, tmp_path):
        path = tmp_path / "noise.trace"
        path.write_text("this is not a trace\n", encoding="ascii")
        with pytest.raises(ValueError, match="bad header"):
            TraceLibrary().import_file(path, name="noise")

    def test_bad_name_is_rejected(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "ok.trace"
        save_trace(trace, path)
        with pytest.raises(ValueError, match="bad trace name"):
            TraceLibrary().import_file(path, name="has spaces")

    def test_unknown_name_suggests_closest(self, tmp_path):
        trace = make_trace()
        save_trace(trace, tmp_path / "w.trace")
        library = TraceLibrary()
        library.import_file(tmp_path / "w.trace", name="webapp")
        with pytest.raises(WorkloadSpecError, match="did you mean 'webapp'"):
            library.lookup("webap")


class TestContentAddressedKeys:
    def test_key_format_is_v2_with_spec_digest(self):
        cache = WorkloadCache(TINY)
        key = cache.workload_key("mcf", TINY.instructions)
        assert key.startswith("rstream-v2|")
        assert "|spec=" in key

    def test_pattern_parameters_change_the_key(self):
        cache = WorkloadCache(TINY)
        a = cache.workload_key("zipf(a=1.2)", TINY.instructions)
        b = cache.workload_key("zipf(a=1.3)", TINY.instructions)
        assert a != b

    def test_reimport_with_different_content_changes_the_key(self, tmp_path):
        """The collision regression the digest satellite exists for.

        Same library name, same benchmark string, different trace
        content: before the spec digest was folded into the store key,
        the second sweep would warm-hit the first sweep's compiled blob.
        """
        library = TraceLibrary()
        save_trace(make_trace(seed=1), tmp_path / "v1.trace")
        library.import_file(tmp_path / "v1.trace", name="prod")
        spec = "trace(prod)"
        first = WorkloadCache(TINY).workload_key(spec, TINY.instructions)

        save_trace(make_trace(seed=2), tmp_path / "v2.trace")
        library.import_file(tmp_path / "v2.trace", name="prod")
        second = WorkloadCache(TINY).workload_key(spec, TINY.instructions)

        assert first != second

    def test_pinned_digest_rejects_reimported_content(self, tmp_path):
        library = TraceLibrary()
        save_trace(make_trace(seed=1), tmp_path / "v1.trace")
        library.import_file(tmp_path / "v1.trace", name="prod")
        pinned = TraceReplayWorkload("prod", library=library).spec()

        save_trace(make_trace(seed=2), tmp_path / "v2.trace")
        library.import_file(tmp_path / "v2.trace", name="prod")
        from repro.workloads import parse_workload_spec

        with pytest.raises(WorkloadSpecError, match="digest mismatch"):
            parse_workload_spec(pinned)

    def test_content_digest_is_stable(self):
        trace = make_trace()
        assert trace_content_digest(trace) == trace_content_digest(trace)
