"""Tests for the generators' multi-scale locality features.

These features exist to reproduce specific predictor dynamics (see
docs/architecture.md §5), so the tests check the *statistics* they are
supposed to produce, not just that code runs.
"""

from collections import Counter

from repro.workloads.generators import (
    HotColdGenerator,
    MixedPhaseGenerator,
    ScanReuseGenerator,
    SmallFootprintGenerator,
    StencilGenerator,
    StreamingGenerator,
    UnpredictableGenerator,
)

LLC = 256 * 1024
BLOCK = 64


def reuse_distances(trace, max_count=200_000):
    """LRU stack distances for each re-reference in the trace.

    O(n * d) stack simulation; fine at test sizes.
    """
    distances = []
    seen = set()
    stack = []
    for record in trace.records[:max_count]:
        block = record.address // BLOCK
        if block in seen:
            index = stack.index(block)
            distances.append(index)
            stack.pop(index)
        stack.insert(0, block)
        seen.add(block)
    return distances


class TestStreamingRevisit:
    def test_revisits_present_at_configured_distance(self):
        generator = StreamingGenerator(
            "s", streams=1, ws_factor=8.0, touches_per_block=1,
            revisit_probability=0.2, revisit_distance_factor=1.0,
        )
        trace = generator.generate(80_000, LLC)
        revisit_pc = generator.pc(63)
        revisits = [r for r in trace.records if r.pc == revisit_pc]
        assert revisits  # the revisit band exists
        # Revisited blocks were previously touched by the stream PC.
        stream_blocks = {r.address // BLOCK for r in trace.records if r.pc != revisit_pc}
        assert all(r.address // BLOCK in stream_blocks for r in revisits)

    def test_zero_probability_disables_revisits(self):
        generator = StreamingGenerator(
            "s", streams=1, ws_factor=8.0, revisit_probability=0.0
        )
        trace = generator.generate(40_000, LLC)
        assert all(r.pc != generator.pc(63) for r in trace.records)


class TestScanReuseEcho:
    def test_echo_creates_shallow_reuse_band(self):
        with_echo = ScanReuseGenerator(
            "e", hot_factor=0.5, scan_factor=1.0,
            echo_probability=0.5, echo_distance_factor=0.1,
            touches_per_block=1, seed=3,
        ).generate(120_000, LLC)
        without = ScanReuseGenerator(
            "e", hot_factor=0.5, scan_factor=1.0,
            echo_probability=0.0, touches_per_block=1, seed=3,
        ).generate(120_000, LLC)
        # Echoes re-touch blocks ~0.1xLLC behind: a band of reuse
        # distances well inside the LLC that the plain version lacks.
        shallow = [d for d in reuse_distances(with_echo) if 100 < d < 1500]
        shallow_plain = [d for d in reuse_distances(without) if 100 < d < 1500]
        assert len(shallow) > 2 * max(len(shallow_plain), 1)


class TestHotColdRecentWindow:
    def test_recent_band_biases_reuse(self):
        biased = HotColdGenerator(
            "h", hot_factor=0.7, cold_factor=4.0, hot_probability=0.8,
            recent_fraction=0.5, recent_window_factor=0.1, seed=5,
        ).generate(80_000, LLC)
        uniform = HotColdGenerator(
            "h", hot_factor=0.7, cold_factor=4.0, hot_probability=0.8,
            recent_fraction=0.0, seed=5,
        ).generate(80_000, LLC)
        biased_shallow = [d for d in reuse_distances(biased) if d < 500]
        uniform_shallow = [d for d in reuse_distances(uniform) if d < 500]
        assert len(biased_shallow) > 1.3 * max(len(uniform_shallow), 1)


class TestStencilProbabilisticTouches:
    def test_touch_counts_vary_per_block(self):
        generator = StencilGenerator(
            "st", near_factor=0.1, far_factor=0.5, ws_factor=4.0,
            near_probability=0.7, far_probability=0.7, seed=9,
        )
        trace = generator.generate(150_000, LLC)
        counts = Counter(r.address // BLOCK for r in trace.records
                         if r.address < generator.data_region(1))
        histogram = Counter(counts.values())
        # At least blocks touched once, twice, and three times must all
        # occur -- the generation-count noise CDBP/TDBP contend with.
        assert histogram[1] > 0 and histogram[2] > 0 and histogram[3] > 0

    def test_rejects_inverted_planes(self):
        import pytest

        with pytest.raises(ValueError):
            StencilGenerator("bad", near_factor=0.5, far_factor=0.2)


class TestMixedPhaseProportionality:
    def test_default_phase_length_scales_with_budget(self):
        phases = [
            (SmallFootprintGenerator("a", ws_factor=0.1, seed=1), 1.0),
            (SmallFootprintGenerator("b", ws_factor=0.1, seed=2), 1.0),
        ]
        generator = MixedPhaseGenerator("m", phases=phases)
        small = generator.generate(80_000, LLC)
        large = generator.generate(320_000, LLC)
        # Both should contain roughly the same number of phase cycles
        # (phases scale), so PC alternation counts stay similar.
        def transitions(trace):
            pcs = [r.pc & ~0xFFF for r in trace.records]
            return sum(1 for a, b in zip(pcs, pcs[1:]) if a != b)

        assert abs(transitions(small) - transitions(large)) <= 4

    def test_explicit_phase_length_respected(self):
        phases = [
            (SmallFootprintGenerator("a", ws_factor=0.1, seed=1), 1.0),
            (SmallFootprintGenerator("b", ws_factor=0.1, seed=2), 1.0),
        ]
        generator = MixedPhaseGenerator("m", phases=phases, phase_instructions=10_000)
        trace = generator.generate(100_000, LLC)
        assert trace.instructions >= 100_000


class TestUnpredictableChurn:
    def test_frontier_grows(self):
        generator = UnpredictableGenerator("u", new_probability=0.3, seed=2)
        trace = generator.generate(60_000, LLC)
        blocks = [r.address // BLOCK for r in trace.records]
        assert max(blocks) > 2000  # the frontier kept allocating

    def test_recency_bias(self):
        generator = UnpredictableGenerator(
            "u", window_factor=0.5, new_probability=0.2,
            recency_exponent=3.0, seed=2,
        )
        trace = generator.generate(60_000, LLC)
        distances = reuse_distances(trace)
        shallow = sum(1 for d in distances if d < 200)
        assert shallow > len(distances) * 0.3
