"""Integration tests for the Cache + policy machinery."""

import pytest

from repro.cache import Cache, CacheBlock, CacheObserver, CacheStats
from repro.replacement import LRUPolicy

from tests.conftest import make_access, replay, tiny_geometry


class TestBasicHitMiss:
    def test_first_access_misses(self, geometry):
        cache = Cache(geometry, LRUPolicy())
        assert replay(cache, [0]) == [False]

    def test_second_access_hits(self, geometry):
        cache = Cache(geometry, LRUPolicy())
        assert replay(cache, [0, 0]) == [False, True]

    def test_different_blocks_same_set_coexist(self, geometry):
        cache = Cache(geometry, LRUPolicy())
        # blocks 0 and 4 map to set 0 in a 4-set cache; 2 ways hold both.
        assert replay(cache, [0, 4, 0, 4]) == [False, False, True, True]

    def test_conflict_evicts_lru(self, geometry):
        cache = Cache(geometry, LRUPolicy())
        # Three blocks in a 2-way set: 0 is LRU when 8 arrives.
        hits = replay(cache, [0, 4, 8, 0])
        assert hits == [False, False, False, False]

    def test_stats_track_events(self, geometry):
        cache = Cache(geometry, LRUPolicy())
        replay(cache, [0, 0, 4, 8])
        assert cache.stats.accesses == 4
        assert cache.stats.hits == 1
        assert cache.stats.misses == 3
        assert cache.stats.fills == 3
        assert cache.stats.evictions == 1

    def test_contains(self, geometry):
        cache = Cache(geometry, LRUPolicy())
        replay(cache, [0])
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_flush_empties_cache(self, geometry):
        cache = Cache(geometry, LRUPolicy())
        replay(cache, [0, 1, 2])
        cache.flush()
        assert not list(cache.resident_blocks())
        assert not cache.contains(0)


class TestWritebacks:
    def test_dirty_eviction_counts_writeback(self, geometry):
        cache = Cache(geometry, LRUPolicy())
        cache.access(make_access(0, geometry, is_write=True, seq=0))
        cache.access(make_access(4, geometry, seq=1))
        cache.access(make_access(8, geometry, seq=2))  # evicts dirty block 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self, geometry):
        cache = Cache(geometry, LRUPolicy())
        replay(cache, [0, 4, 8])
        assert cache.stats.writebacks == 0

    def test_write_hit_marks_dirty(self, geometry):
        cache = Cache(geometry, LRUPolicy())
        cache.access(make_access(0, geometry, seq=0))
        cache.access(make_access(0, geometry, is_write=True, seq=1))
        (_, _, block), = cache.resident_blocks()
        assert block.dirty


class TestBlockBookkeeping:
    def test_access_count_increments(self, geometry):
        cache = Cache(geometry, LRUPolicy())
        replay(cache, [0, 0, 0])
        (_, _, block), = cache.resident_blocks()
        assert block.access_count == 3

    def test_fill_and_last_access_seq(self, geometry):
        cache = Cache(geometry, LRUPolicy())
        replay(cache, [0, 4, 0])
        blocks = {block.tag: block for _, _, block in cache.resident_blocks()}
        block0 = blocks[geometry.tag(0)]
        assert block0.fill_seq == 0
        assert block0.last_access_seq == 2

    def test_fill_resets_metadata(self):
        block = CacheBlock()
        block.meta["signature"] = 123
        block.predicted_dead = True
        block.fill(tag=7, seq=5, is_write=False)
        assert block.meta == {}
        assert not block.predicted_dead
        assert block.access_count == 1

    def test_invalidate(self):
        block = CacheBlock()
        block.fill(tag=7, seq=0, is_write=True)
        block.invalidate()
        assert not block.valid
        assert not block.dirty

    def test_repr_forms(self):
        block = CacheBlock()
        assert "invalid" in repr(block)
        block.fill(tag=7, seq=0, is_write=True)
        assert "tag" in repr(block)


class TestObserver:
    class Recorder(CacheObserver):
        def __init__(self):
            self.events = []

        def on_hit(self, set_index, way, block, access):
            self.events.append(("hit", set_index, block.tag))

        def on_fill(self, set_index, way, block, access):
            self.events.append(("fill", set_index, block.tag))

        def on_evict(self, set_index, way, block, access):
            self.events.append(("evict", set_index, block.tag))

        def on_bypass(self, set_index, access):
            self.events.append(("bypass", set_index, None))

    def test_events_fire_in_order(self, geometry):
        cache = Cache(geometry, LRUPolicy())
        recorder = self.Recorder()
        cache.add_observer(recorder)
        replay(cache, [0, 0, 4, 8])
        kinds = [event[0] for event in recorder.events]
        assert kinds == ["fill", "hit", "fill", "evict", "fill"]

    def test_evicted_block_still_readable_in_callback(self, geometry):
        cache = Cache(geometry, LRUPolicy())
        recorder = self.Recorder()
        cache.add_observer(recorder)
        replay(cache, [0, 4, 8])
        evict = [event for event in recorder.events if event[0] == "evict"]
        assert evict == [("evict", 0, geometry.tag(0))]


class TestStats:
    def test_rates(self):
        stats = CacheStats(accesses=10, hits=7, misses=3)
        assert stats.hit_rate == pytest.approx(0.7)
        assert stats.miss_rate == pytest.approx(0.3)

    def test_rates_with_no_accesses(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        assert stats.miss_rate == 0.0

    def test_mpki(self):
        stats = CacheStats(misses=50)
        assert stats.mpki(10_000) == pytest.approx(5.0)

    def test_mpki_rejects_bad_instruction_count(self):
        with pytest.raises(ValueError):
            CacheStats().mpki(0)

    def test_merge(self):
        a = CacheStats(accesses=5, hits=3, misses=2, fills=2)
        b = CacheStats(accesses=1, hits=0, misses=1, fills=1, bypasses=1)
        a.merge(b)
        assert a.accesses == 6
        assert a.misses == 3
        assert a.bypasses == 1

    def test_snapshot_is_independent(self):
        stats = CacheStats(accesses=5)
        copy = stats.snapshot()
        stats.accesses = 99
        assert copy.accesses == 5


class TestPolicyBinding:
    def test_policy_cannot_bind_twice(self, geometry):
        policy = LRUPolicy()
        Cache(geometry, policy)
        with pytest.raises(RuntimeError):
            Cache(geometry, policy)

    def test_bad_victim_way_detected(self, geometry):
        class BrokenPolicy(LRUPolicy):
            def choose_victim(self, set_index, access):
                return 99

        cache = Cache(geometry, BrokenPolicy())
        with pytest.raises(ValueError):
            replay(cache, [0, 4, 8])
