"""Paranoid mode: per-access machine-checking of cache invariants.

``Cache(paranoid=True)`` (or ``REPRO_PARANOID=1``) validates the PR-1
tag->way fast-path index against the ground-truth frame array, the
replacement policy's own metadata, and the statistics counters after
every access.  These tests corrupt each of those structures directly and
assert the checker names the damage; they also pin that paranoid mode is
a pure observer -- simulated results are bit-identical with it on or off,
including through the replay fast path.
"""

from __future__ import annotations

import random

import pytest
from tests.conftest import make_access, replay as drive, tiny_geometry

from repro.cache import Cache, CacheStats
from repro.cache.cache import ParanoidViolation
from repro.replacement.lru import LRUPolicy
from repro.sim.replay import replay as replay_stream


def make_cache(paranoid=True, sets=4, assoc=2):
    return Cache(tiny_geometry(sets=sets, assoc=assoc), LRUPolicy(), paranoid=paranoid)


def warm(cache, blocks=(0, 1, 4, 5, 0, 8, 1)):
    drive(cache, blocks)


class TestDetection:
    def test_clean_cache_passes(self):
        cache = make_cache()
        warm(cache)
        cache.check_invariants()

    def test_stale_index_entry_caught_on_access(self):
        # An index entry pointing at a frame that no longer holds that
        # tag is exactly the class of fast-path bug paranoid mode is for.
        cache = make_cache()
        warm(cache)
        set_index, ways = next(
            (s, w) for s, w in enumerate(cache.sets) if any(b.valid for b in w)
        )
        way = next(w for w, b in enumerate(cache.sets[set_index]) if b.valid)
        cache.sets[set_index][way].tag ^= 0x5A  # frame and index now disagree
        with pytest.raises(ParanoidViolation, match="frame holds"):
            cache.access(make_access(set_index, cache.geometry, seq=99))

    def test_index_to_invalid_frame_caught(self):
        cache = make_cache()
        warm(cache)
        set_index = next(
            s for s, index in enumerate(cache._tag_index) if index
        )
        tag, way = next(iter(cache._tag_index[set_index].items()))
        cache.sets[set_index][way].invalidate()
        with pytest.raises(ParanoidViolation, match="invalid frame"):
            cache.check_invariants(set_index)

    def test_missing_index_entry_caught(self):
        cache = make_cache()
        warm(cache)
        set_index = next(
            s for s, index in enumerate(cache._tag_index) if index
        )
        cache._tag_index[set_index].clear()  # frames valid, index empty
        with pytest.raises(ParanoidViolation, match="not indexed to its way"):
            cache.check_invariants(set_index)

    def test_out_of_range_index_way_caught(self):
        cache = make_cache()
        warm(cache)
        set_index = next(
            s for s, index in enumerate(cache._tag_index) if index
        )
        tag = next(iter(cache._tag_index[set_index]))
        cache._tag_index[set_index][tag] = 99
        with pytest.raises(ParanoidViolation, match="out-of-range way"):
            cache.check_invariants(set_index)

    def test_lru_stack_corruption_caught(self):
        cache = make_cache()
        warm(cache)
        stack = cache.policy._stacks[0]
        stack[0] = stack[1]  # duplicate entry: not a permutation
        with pytest.raises(ParanoidViolation, match="not a permutation"):
            cache.check_invariants(0)

    def test_stats_identity_violation_caught(self):
        cache = make_cache()
        warm(cache)
        cache.stats.hits += 3  # hits + misses no longer equals accesses
        with pytest.raises(ParanoidViolation, match="stats identity"):
            cache.check_invariants()

    def test_stats_regression_caught(self):
        cache = make_cache()
        warm(cache)
        cache.check_invariants()  # snapshots the floor
        cache.stats.accesses -= 1
        cache.stats.misses -= 1
        with pytest.raises(ParanoidViolation, match="went backwards"):
            cache.check_invariants()

    def test_violation_is_loud_only_in_paranoid_mode(self):
        # The same damage goes unnoticed with paranoid off: the mode is
        # what buys detection, not the normal access path.
        cache = make_cache(paranoid=False)
        warm(cache)
        set_index = next(
            s for s, index in enumerate(cache._tag_index) if index
        )
        cache._tag_index[set_index].clear()
        cache.access(make_access(set_index + 4 * 7, cache.geometry, seq=99))


class TestTransparency:
    def test_results_identical_with_and_without(self):
        rng = random.Random(7)
        blocks = [rng.randrange(64) for _ in range(600)]
        plain, checked = make_cache(paranoid=False), make_cache(paranoid=True)
        assert drive(plain, blocks) == drive(checked, blocks)
        assert plain.stats.snapshot() == checked.stats.snapshot()

    def test_replay_fast_path_checked_and_identical(self):
        # sim.replay keeps its inlined fast path under paranoid mode --
        # that inlining is precisely the code under suspicion -- and the
        # hit vector and stats must not move.
        rng = random.Random(11)
        geometry = tiny_geometry(sets=8, assoc=4)
        accesses = [
            make_access(rng.randrange(256), geometry, seq=seq)
            for seq in range(800)
        ]
        plain = Cache(geometry, LRUPolicy(), paranoid=False)
        checked = Cache(geometry, LRUPolicy(), paranoid=True)
        assert replay_stream(plain, accesses) == replay_stream(checked, accesses)
        assert plain.stats.snapshot() == checked.stats.snapshot()

    def test_replay_fast_path_detects_planted_corruption(self):
        geometry = tiny_geometry(sets=8, assoc=4)
        accesses = [
            make_access(number, geometry, seq=seq)
            for seq, number in enumerate([0, 8, 16, 24, 0, 32])
        ]
        cache = Cache(geometry, LRUPolicy(), paranoid=True)
        replay_stream(cache, accesses)
        cache._tag_index[0].clear()
        with pytest.raises(ParanoidViolation):
            replay_stream(cache, [make_access(0, geometry, seq=100)])


class TestConfiguration:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARANOID", raising=False)
        assert not Cache(tiny_geometry(), LRUPolicy()).paranoid

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("", False), ("off", False),
    ])
    def test_env_flag(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_PARANOID", value)
        assert Cache(tiny_geometry(), LRUPolicy()).paranoid is expected

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARANOID", "1")
        assert not Cache(tiny_geometry(), LRUPolicy(), paranoid=False).paranoid

    def test_stats_floor_starts_clean(self):
        cache = make_cache()
        assert cache._stats_floor.accesses == 0
        assert isinstance(cache._stats_floor, CacheStats)
