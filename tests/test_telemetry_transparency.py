"""Telemetry transparency: probes must never change replay results.

The contract (docs/observability.md): replaying a stream with an
:class:`~repro.telemetry.probe.IntervalRecorder` attached produces
bit-identical hit vectors, statistics, block contents, and policy state
to the same replay with the default
:data:`~repro.telemetry.probe.NULL_PROBE` -- on the inlined fast path,
on the observer/reference path, and through the whole
``timeseries_experiment`` stack.  The recorder's per-epoch deltas must
also sum to exactly the end-of-run aggregates, or the time series would
disagree with the tables built from the same run.
"""

from __future__ import annotations

import pytest

from repro.cache.cache import Cache, CacheAccess, CacheGeometry
from repro.analysis.accuracy import AccuracyObserver
from repro.core import DBRBPolicy, SamplingDeadBlockPredictor
from repro.replacement import DRRIPPolicy, LRUPolicy, RandomPolicy
from repro.sim.replay import replay
from repro.telemetry import NULL_PROBE, IntervalRecorder
from repro.utils.rng import XorShift64

GEOMETRY = CacheGeometry(size_bytes=32 * 4 * 64, associativity=4, block_bytes=64)

POLICIES = {
    "lru": lambda: LRUPolicy(),
    "random": lambda: RandomPolicy(),
    "rrip": lambda: DRRIPPolicy(),
    "dbrb": lambda: DBRBPolicy(LRUPolicy(), SamplingDeadBlockPredictor()),
}


def make_stream(length: int = 6000, blocks: int = 300):
    """Deterministic mix of reuse and cold streaming (hits, evictions,
    writebacks, and -- under DBRB -- bypasses)."""
    rng = XorShift64(0xBEEF)
    accesses = []
    next_cold = blocks
    for seq in range(length):
        if rng.randrange(2):
            block = rng.randrange(blocks)
            pc = 0x400000 + (block % 13) * 4
        else:
            block = next_cold
            next_cold += 1
            pc = 0x500000 + (seq % 7) * 4
        accesses.append(
            CacheAccess(
                address=block * GEOMETRY.block_bytes,
                pc=pc,
                is_write=rng.randrange(4) == 0,
                seq=seq,
            )
        )
    return accesses


def block_state(cache: Cache):
    return [
        (
            block.valid, block.tag, block.dirty, block.predicted_dead,
            block.fill_seq, block.last_access_seq, block.access_count,
        )
        for ways in cache.sets
        for block in ways
    ]


def run(policy_factory, probe, observers=False):
    cache = Cache(GEOMETRY, policy_factory(), probe=probe)
    observer = None
    if observers:
        observer = AccuracyObserver(cache)
        cache.add_observer(observer)
    hits = replay(cache, make_stream())
    return cache, hits, observer


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_recorder_is_bit_identical_on_fast_path(name):
    factory = POLICIES[name]
    base_cache, base_hits, _ = run(factory, NULL_PROBE)
    recorder = IntervalRecorder(epochs=7)  # deliberately not a divisor
    probed_cache, probed_hits, _ = run(factory, recorder)

    assert probed_hits == base_hits
    assert probed_cache.stats.snapshot() == base_cache.stats.snapshot()
    assert block_state(probed_cache) == block_state(base_cache)
    assert len(recorder.samples) == 7


@pytest.mark.parametrize("name", ["lru", "dbrb"])
def test_recorder_is_bit_identical_on_reference_path(name):
    factory = POLICIES[name]
    base_cache, base_hits, base_observer = run(factory, NULL_PROBE, observers=True)
    recorder = IntervalRecorder(epochs=5)
    probed_cache, probed_hits, probed_observer = run(
        factory, recorder, observers=True
    )

    assert probed_hits == base_hits
    assert probed_cache.stats.snapshot() == base_cache.stats.snapshot()
    assert block_state(probed_cache) == block_state(base_cache)
    assert probed_observer.positives == base_observer.positives
    assert probed_observer.false_positives == base_observer.false_positives
    assert probed_observer.accesses == base_observer.accesses


def test_epoch_deltas_sum_to_run_totals():
    recorder = IntervalRecorder(epochs=9)
    cache, _, _ = run(POLICIES["dbrb"], recorder)
    stats = cache.stats
    for field in ("accesses", "hits", "misses", "fills", "evictions",
                  "writebacks", "bypasses", "dead_block_victims"):
        assert sum(getattr(s, field) for s in recorder.samples) == \
            getattr(stats, field), field
    # Epochs tile the stream exactly: contiguous, complete, in order.
    assert recorder.samples[0].start == 0
    assert recorder.samples[-1].end == stats.accesses
    for before, after in zip(recorder.samples, recorder.samples[1:]):
        assert after.start == before.end


def test_timeseries_experiment_matches_probeless_run():
    """End to end: the timeseries cell's aggregates equal a plain run."""
    from repro.harness import ExperimentConfig, WorkloadCache, TECHNIQUES
    from repro.harness import timeseries_experiment

    config = ExperimentConfig(scale=32, instructions=30_000, seed=7)
    cache = WorkloadCache(config)
    result = timeseries_experiment(cache, "mcf", "sampler", epochs=6)

    technique = TECHNIQUES["sampler"]
    plain = cache.system.run(
        cache.filtered("mcf"),
        lambda g, a: technique.build(g, a),
        technique_name="sampler",
        observer_factories=[AccuracyObserver],
        compute_timing=False,
    )
    assert result.run.llc_hits == plain.llc_hits
    assert result.run.llc_stats.snapshot() == plain.llc_stats.snapshot()
    assert result.samples, "recorder captured no epochs"
    columns = result.recorder.fields()
    for required in ("coverage", "false_positive_rate", "bypass_rate",
                     "sampler_occupancy", "table_saturation"):
        assert required in columns, required
