"""Unit tests for repro.utils.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import bit_field, ilog2, is_power_of_two, mask, sign_extend


class TestIsPowerOfTwo:
    def test_powers_are_recognized(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_zero_is_not(self):
        assert not is_power_of_two(0)

    def test_negative_is_not(self):
        assert not is_power_of_two(-4)

    def test_non_powers_are_rejected(self):
        for value in (3, 5, 6, 7, 9, 12, 100, 1000):
            assert not is_power_of_two(value)


class TestIlog2:
    def test_round_trip(self):
        for exponent in range(24):
            assert ilog2(1 << exponent) == exponent

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            ilog2(12)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ilog2(0)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 0b1
        assert mask(4) == 0b1111
        assert mask(15) == 0x7FFF

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBitField:
    def test_documented_example(self):
        assert bit_field(0b101100, low=2, width=3) == 0b011

    def test_full_value(self):
        assert bit_field(0xABCD, low=0, width=16) == 0xABCD

    def test_high_bits(self):
        assert bit_field(0xF0, low=4, width=4) == 0xF

    def test_rejects_negative_low(self):
        with pytest.raises(ValueError):
            bit_field(1, low=-1, width=2)

    @given(st.integers(min_value=0, max_value=2**40), st.integers(0, 30), st.integers(1, 20))
    def test_matches_shift_and_mask(self, value, low, width):
        assert bit_field(value, low, width) == (value >> low) & ((1 << width) - 1)


class TestSignExtend:
    def test_positive_stays(self):
        assert sign_extend(0b0111, 4) == 7

    def test_negative_extends(self):
        assert sign_extend(0b1111, 4) == -1
        assert sign_extend(0b1000, 4) == -8

    def test_width_one(self):
        assert sign_extend(1, 1) == -1
        assert sign_extend(0, 1) == 0

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            sign_extend(1, 0)

    @given(st.integers(min_value=-(2**15), max_value=2**15 - 1))
    def test_round_trip_16_bit(self, value):
        assert sign_extend(value & 0xFFFF, 16) == value
