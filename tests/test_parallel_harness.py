"""The process-parallel sweep runner and its environment knobs.

The load-bearing promise of :mod:`repro.harness.parallel` is that a
parallel sweep is *bit-identical* to the serial one; the tests here pin
that on a small budget, along with job-count resolution and the
``REPRO_CORES`` / ``REPRO_JOBS`` environment overrides.
"""

from __future__ import annotations

import pytest

from repro.harness.parallel import (
    parallel_single_thread_comparison,
    resolve_jobs,
)
from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.harness.experiments import single_thread_comparison

BENCHMARKS = ("perlbench", "mcf")
TECHNIQUE_KEYS = ("rrip",)
SMALL = ExperimentConfig(instructions=30_000)


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(5) == 5

    @pytest.mark.parametrize("raw", ["0", "-2", "two", "", "2.5", "0x4"])
    def test_invalid_settings_rejected(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_JOBS", raw)
        with pytest.raises(ValueError):
            resolve_jobs()

    def test_error_names_the_variable_and_value(self, monkeypatch):
        # An empty or garbled setting (e.g. REPRO_JOBS= in a CI file)
        # must say what was wrong, not surface a bare int() failure.
        monkeypatch.setenv("REPRO_JOBS", "")
        with pytest.raises(ValueError, match=r"REPRO_JOBS.*''"):
            resolve_jobs()

    def test_surrounding_whitespace_tolerated(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "  4 ")
        assert resolve_jobs() == 4

    def test_invalid_argument_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestExperimentConfigEnv:
    def test_repro_cores_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORES", "2")
        assert ExperimentConfig.from_env().num_cores == 2

    def test_repro_cores_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CORES", raising=False)
        assert ExperimentConfig.from_env().num_cores == 4

    def test_repro_cores_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORES", "0")
        with pytest.raises(ValueError):
            ExperimentConfig.from_env()


class TestParallelComparison:
    def test_serial_path_reuses_workload_cache(self):
        cache = WorkloadCache(SMALL)
        comparison = parallel_single_thread_comparison(
            cache, TECHNIQUE_KEYS, BENCHMARKS, jobs=1
        )
        assert comparison.benchmarks == BENCHMARKS
        # jobs=1 runs in-process: the passed cache now holds the workloads.
        assert cache._filtered

    def test_parallel_matches_serial_bit_identically(self):
        serial = single_thread_comparison(
            WorkloadCache(SMALL), TECHNIQUE_KEYS, BENCHMARKS
        )
        parallel = parallel_single_thread_comparison(
            SMALL, TECHNIQUE_KEYS, BENCHMARKS, jobs=2
        )
        for benchmark in BENCHMARKS:
            serial_base = serial.baseline[benchmark]
            parallel_base = parallel.baseline[benchmark]
            assert (
                serial_base.llc_stats.snapshot()
                == parallel_base.llc_stats.snapshot()
            )
            assert serial_base.ipc == parallel_base.ipc
            for key in TECHNIQUE_KEYS:
                mine = serial.results[benchmark][key]
                theirs = parallel.results[benchmark][key]
                assert mine.llc_stats.snapshot() == theirs.llc_stats.snapshot()
                assert mine.llc_hits == theirs.llc_hits
                assert mine.ipc == theirs.ipc
                assert mine.instructions == theirs.instructions

    def test_env_jobs_drives_fanout(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        comparison = parallel_single_thread_comparison(
            SMALL, TECHNIQUE_KEYS, BENCHMARKS
        )
        assert set(comparison.results) == set(BENCHMARKS)
        for benchmark in BENCHMARKS:
            result = comparison.results[benchmark][TECHNIQUE_KEYS[0]]
            # Results crossed the process boundary stripped of the cache.
            assert result.cache is None
            assert result.llc_stats.accesses > 0

    def test_unknown_technique_rejected_up_front(self):
        # Typos must fail before any replay begins, with a closest-match
        # suggestion and the valid vocabulary -- not as a KeyError from
        # inside a worker process minutes into the sweep.
        with pytest.raises(
            ValueError,
            match=r"unknown technique 'sampelr'.*did you mean 'sampler'.*registered:.*rrip",
        ):
            parallel_single_thread_comparison(
                SMALL, ("rrip", "sampelr"), BENCHMARKS, jobs=1
            )

    def test_complete_sweep_reports_no_failures(self):
        comparison = parallel_single_thread_comparison(
            SMALL, TECHNIQUE_KEYS, BENCHMARKS, jobs=1
        )
        assert not comparison.is_partial
        assert comparison.failures == ()
        assert comparison.failure_report() == ""


class TestWorkloadCacheClear:
    def test_reuse_after_clear(self):
        cache = WorkloadCache(SMALL)
        first = cache.filtered(BENCHMARKS[0])
        assert cache.filtered(BENCHMARKS[0]) is first  # memoized
        cache.clear()
        assert not cache._filtered and not cache._mixes
        # The cache must stay fully usable: same workload, fresh object,
        # identical content (generation is deterministic).
        again = cache.filtered(BENCHMARKS[0])
        assert again is not first
        assert again.llc_indices == first.llc_indices
        assert again.levels == first.levels
        assert again.trace.records == first.trace.records

    def test_clear_empty_cache_is_harmless(self):
        cache = WorkloadCache(SMALL)
        cache.clear()
        cache.clear()
        assert cache.filtered(BENCHMARKS[0]).llc_indices
