"""DBRB integration with predictors whose deadness is time-dependent."""

from repro.cache import Cache, CacheAccess, CacheGeometry
from repro.core import DBRBPolicy
from repro.predictors import AIPPredictor, DeadBlockPredictor, TimeBasedPredictor
from repro.replacement import LRUPolicy


class TestDynamicVictimSelection:
    def test_time_based_victim_chosen_over_lru(self):
        """A block idle past its learned live time must be victimized even
        when it is *not* the LRU block."""
        geometry = CacheGeometry(1 * 2 * 64, 2, 64)
        predictor = TimeBasedPredictor(multiplier=2)
        cache = Cache(geometry, DBRBPolicy(LRUPolicy(), predictor,
                                           enable_bypass=False))
        # Teach: block 0's live time is ~2 (filled, hit 2 later, evicted).
        cache.access(CacheAccess(address=0, pc=0x5, seq=0))
        cache.access(CacheAccess(address=0, pc=0x5, seq=2))
        cache.access(CacheAccess(address=64, pc=0x6, seq=3))
        cache.access(CacheAccess(address=128, pc=0x7, seq=4))  # evicts block 0
        assert predictor.live_times[predictor._context(0x5)] == 2
        # Refill block 0; make block 64... current set: {64, 128}.
        cache.access(CacheAccess(address=0, pc=0x5, seq=5))    # evicts LRU=64
        # Keep 128 freshly touched so IT is MRU and 0... order now:
        # contents {128, 0}. Touch 128 repeatedly to advance time.
        for seq in range(6, 30):
            cache.access(CacheAccess(address=128, pc=0x7, seq=seq))
        # Block 0 is idle for 25 > 2x2: predicted dead now.  The next miss
        # must victimize block 0 even though 128's frame... 0 IS also LRU
        # here, so instead verify via is_dead_now directly plus eviction.
        way0 = cache.find(0, cache.geometry.tag(0))
        assert predictor.is_dead_now(0, way0, now=30)
        cache.access(CacheAccess(address=192, pc=0x8, seq=30))
        assert not cache.contains(0)
        assert cache.contains(128)

    def test_live_block_spared_when_other_is_dead(self):
        """The dynamic dead check must override pure recency: mark the
        *MRU* block dead via idleness learned per PC, keep the LRU block
        live, and check the dead MRU block goes first."""
        geometry = CacheGeometry(1 * 2 * 64, 2, 64)
        predictor = TimeBasedPredictor(multiplier=2)
        cache = Cache(geometry, DBRBPolicy(LRUPolicy(), predictor,
                                           enable_bypass=False))
        # Teach pc 0xA a short live time (about 1).
        cache.access(CacheAccess(address=0, pc=0xA, seq=0))
        cache.access(CacheAccess(address=0, pc=0xA, seq=1))
        cache.access(CacheAccess(address=64, pc=0xB, seq=2))
        cache.access(CacheAccess(address=128, pc=0xB, seq=3))  # evict block 0
        # Now: fill block 0 (pc 0xA) making it MRU, with block 128 at LRU.
        cache.access(CacheAccess(address=0, pc=0xA, seq=4))    # evicts 64
        # Touch 128 so it is recent/live, then let block 0 idle out.
        cache.access(CacheAccess(address=128, pc=0xB, seq=20))
        cache.access(CacheAccess(address=192, pc=0xB, seq=21))
        # Victim selection: block 0 idle 17 > 2x1, block 128 idle 1.
        assert not cache.contains(0)
        assert cache.contains(128)

    def test_aip_dynamic_check_in_policy(self):
        geometry = CacheGeometry(1 * 2 * 64, 2, 64)
        predictor = AIPPredictor()
        policy = DBRBPolicy(LRUPolicy(), predictor, enable_bypass=False)
        cache = Cache(geometry, policy)
        seq = 0
        for _ in range(3):  # teach interval + confidence over generations
            for _ in range(4):
                cache.access(CacheAccess(address=0, pc=0x5, seq=seq)); seq += 1
                cache.access(CacheAccess(address=64, pc=0x6, seq=seq)); seq += 1
            cache.access(CacheAccess(address=128, pc=0x7, seq=seq)); seq += 1
            cache.access(CacheAccess(address=192, pc=0x8, seq=seq)); seq += 1
        # Refill 0, let it idle, verify eviction prefers it.
        cache.access(CacheAccess(address=0, pc=0x5, seq=seq)); seq += 1
        for _ in range(20):
            cache.access(CacheAccess(address=64, pc=0x6, seq=seq)); seq += 1
        cache.access(CacheAccess(address=256, pc=0x9, seq=seq))
        assert not cache.contains(0)
        assert cache.contains(64)


class TestPredictorBaseDefaults:
    def test_base_predictor_is_neutral(self):
        geometry = CacheGeometry(2 * 2 * 64, 2, 64)
        predictor = DeadBlockPredictor()
        cache = Cache(geometry, DBRBPolicy(LRUPolicy(), predictor))
        for seq, block in enumerate([0, 1, 2, 3, 0, 1]):
            cache.access(CacheAccess(address=block * 64, pc=0x1, seq=seq))
        # Neutral predictor: no bypasses, no dead victims; behaves as LRU.
        assert cache.stats.bypasses == 0
        assert cache.stats.dead_block_victims == 0

    def test_predictor_cannot_bind_twice(self):
        import pytest

        geometry = CacheGeometry(2 * 2 * 64, 2, 64)
        predictor = DeadBlockPredictor()
        Cache(geometry, DBRBPolicy(LRUPolicy(), predictor))
        with pytest.raises(RuntimeError):
            Cache(geometry, DBRBPolicy(LRUPolicy(), predictor))