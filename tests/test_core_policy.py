"""Integration tests: sampling predictor + DBRB policy on a live cache.

These tests build the scenario the paper's optimization exists for: a hot
working set being thrashed by a streaming scan.  LRU destroys the working
set; dead-block bypass should learn the stream's PC and keep it out.
"""

import pytest

from repro.cache import Cache, CacheAccess, CacheGeometry
from repro.core import DBRBPolicy, SamplingDeadBlockPredictor
from repro.replacement import LRUPolicy, RandomPolicy

HOT_PC = 0x400100
STREAM_PC = 0x400990


def small_geometry() -> CacheGeometry:
    # 32 sets x 4 ways: every set is sampled (sampler clamps to 32 sets).
    return CacheGeometry(size_bytes=32 * 4 * 64, associativity=4, block_bytes=64)


def build_sampler_cache(default=None, **predictor_kwargs):
    # Sampler associativity 8: large enough to retain the hot tags across a
    # round while stream tags cycle through and train "dead".
    predictor_kwargs.setdefault("sampler_assoc", 8)
    predictor = SamplingDeadBlockPredictor(**predictor_kwargs)
    policy = DBRBPolicy(default or LRUPolicy(), predictor)
    cache = Cache(small_geometry(), policy, name="LLC")
    return cache, predictor


def hot_and_stream_workload(rounds=30, hot_blocks=64, stream_blocks=64):
    """Alternate touching a resident-sized hot set (PC_H) with a
    never-reused stream (PC_S).  Yields CacheAccess objects."""
    seq = 0
    stream_base = 1 << 20  # distinct address region
    next_stream = 0
    for _ in range(rounds):
        for i in range(hot_blocks):
            yield CacheAccess(address=i * 64, pc=HOT_PC, seq=seq)
            seq += 1
        for _ in range(stream_blocks):
            yield CacheAccess(
                address=stream_base + next_stream * 64, pc=STREAM_PC, seq=seq
            )
            seq += 1
            next_stream += 1


def double_touch_workload(rounds=30, hot_blocks=64, stream_blocks=64):
    """Like :func:`hot_and_stream_workload` but every stream block is
    touched twice -- filled by STREAM_PC, finalized by STREAM_PC+8.  The
    fill PC stays live (so no bypass) while the finalizing PC trains dead,
    exercising the *replacement* half of DBRB: hit -> marked dead ->
    victimized early."""
    seq = 0
    stream_base = 1 << 20
    next_stream = 0
    for _ in range(rounds):
        for i in range(hot_blocks):
            yield CacheAccess(address=i * 64, pc=HOT_PC, seq=seq)
            seq += 1
        for _ in range(stream_blocks):
            address = stream_base + next_stream * 64
            yield CacheAccess(address=address, pc=STREAM_PC, seq=seq)
            seq += 1
            yield CacheAccess(address=address, pc=STREAM_PC + 8, seq=seq)
            seq += 1
            next_stream += 1


def run(cache, workload):
    for access in workload:
        cache.access(access)
    return cache.stats


class TestSamplerLearnsTheStream:
    def test_stream_pc_becomes_predicted_dead(self):
        cache, predictor = build_sampler_cache()
        run(cache, hot_and_stream_workload(rounds=10))
        assert predictor._predict(STREAM_PC)

    def test_hot_pc_stays_live(self):
        cache, predictor = build_sampler_cache()
        run(cache, hot_and_stream_workload(rounds=10))
        assert not predictor._predict(HOT_PC)

    def test_stream_blocks_bypass_after_warmup(self):
        cache, _ = build_sampler_cache()
        run(cache, hot_and_stream_workload(rounds=20))
        assert cache.stats.bypasses > 0

    def test_sampler_observes_its_sets(self):
        cache, predictor = build_sampler_cache()
        run(cache, hot_and_stream_workload(rounds=5))
        assert predictor.sampler.accesses > 0
        assert predictor.sampler.evictions > 0


class TestDBRBBeatsLRUOnThrash:
    def test_fewer_misses_than_lru(self):
        # 3 hot + 4 stream blocks per 4-way set per round: the stream
        # pushes the hot blocks out under LRU every round.
        workload = lambda: hot_and_stream_workload(
            rounds=30, hot_blocks=96, stream_blocks=128
        )
        lru_cache = Cache(small_geometry(), LRUPolicy())
        dbrb_cache, _ = build_sampler_cache()
        lru_stats = run(lru_cache, workload())
        dbrb_stats = run(dbrb_cache, workload())
        # LRU thrashes: every hot access misses after each stream pass.
        # DBRB bypasses the stream and preserves the hot set.
        assert dbrb_stats.misses < 0.7 * lru_stats.misses

    def test_dead_blocks_chosen_as_victims(self):
        cache, _ = build_sampler_cache()
        stats = run(cache, double_touch_workload(rounds=30))
        # The finalizing touch marks stream blocks dead in place; they must
        # then be selected as victims ahead of the LRU block.
        assert stats.dead_block_victims > 0

    def test_double_touch_stream_not_bypassed(self):
        """The fill PC of a twice-touched stream is live, so DBRB must keep
        placing those blocks (bypassing them would cost the second hit)."""
        cache, predictor = build_sampler_cache()
        run(cache, double_touch_workload(rounds=20))
        assert not predictor._predict(STREAM_PC)
        assert predictor._predict(STREAM_PC + 8)

    def test_replacement_preserves_hot_set_without_bypass(self):
        workload = lambda: double_touch_workload(
            rounds=30, hot_blocks=96, stream_blocks=128
        )
        lru_cache = Cache(small_geometry(), LRUPolicy())
        dbrb_cache, _ = build_sampler_cache()
        lru_stats = run(lru_cache, workload())
        dbrb_stats = run(dbrb_cache, workload())
        assert dbrb_stats.misses < lru_stats.misses

    def test_friendly_workload_unharmed(self):
        """With no stream, DBRB must match plain LRU (no false bypasses)."""

        def friendly(rounds=30):
            seq = 0
            for _ in range(rounds):
                for i in range(96):  # 3 ways' worth: fits in the cache
                    yield CacheAccess(address=i * 64, pc=HOT_PC, seq=seq)
                    seq += 1

        lru_cache = Cache(small_geometry(), LRUPolicy())
        dbrb_cache, _ = build_sampler_cache()
        lru_stats = run(lru_cache, friendly())
        dbrb_stats = run(dbrb_cache, friendly())
        assert dbrb_stats.misses <= lru_stats.misses * 1.05


class TestRandomDefault:
    def test_dbrb_improves_random_replacement(self):
        """Paper Section VII-B: the sampling predictor rescues a randomly
        replaced cache."""
        random_cache = Cache(small_geometry(), RandomPolicy(seed=3))
        dbrb_cache, _ = build_sampler_cache(default=RandomPolicy(seed=3))
        random_stats = run(random_cache, hot_and_stream_workload(rounds=30))
        dbrb_stats = run(dbrb_cache, hot_and_stream_workload(rounds=30))
        assert dbrb_stats.misses < random_stats.misses

    def test_sampler_stays_lru_under_random_default(self):
        """Section III-B: the sampler's replacement is LRU even when the
        cache's default policy is random."""
        cache, predictor = build_sampler_cache(default=RandomPolicy(seed=3))
        run(cache, hot_and_stream_workload(rounds=5))
        # The sampler has its own LRU stacks, untouched by the random policy.
        assert predictor.sampler._stacks[0] != list(
            range(predictor.sampler.associativity)
        ) or predictor.sampler.accesses == 0


class TestVictimSelection:
    def test_dead_block_closest_to_lru_preferred(self):
        """Build a set where two blocks are predicted dead; the one nearer
        the LRU end of the recency stack must be evicted first."""
        geometry = CacheGeometry(size_bytes=1 * 4 * 64, associativity=4, block_bytes=64)
        predictor = SamplingDeadBlockPredictor(sampler_assoc=4)
        default = LRUPolicy()
        policy = DBRBPolicy(default, predictor, enable_bypass=False)
        cache = Cache(geometry, policy)
        # Fill 4 ways: blocks 0..3; mark blocks 1 and 2 dead manually.
        for seq, block_number in enumerate(range(4)):
            cache.access(CacheAccess(address=block_number * 64, pc=0x1, seq=seq))
        tag1 = geometry.tag(1 * 64)
        tag2 = geometry.tag(2 * 64)
        for _, way, block in cache.resident_blocks():
            if block.tag in (tag1, tag2):
                block.predicted_dead = True
        cache.access(CacheAccess(address=9 * 64, pc=0x1, seq=10))
        # Recency stack was MRU->LRU: 3,2,1,0; block 1 is the dead block
        # closest to LRU and must be gone; block 2 survives this round.
        assert not cache.contains(1 * 64)
        assert cache.contains(2 * 64)
        assert cache.contains(0)  # live LRU block spared

    def test_falls_back_to_default_when_no_dead_block(self):
        geometry = CacheGeometry(size_bytes=1 * 2 * 64, associativity=2, block_bytes=64)
        predictor = SamplingDeadBlockPredictor(sampler_assoc=2)
        policy = DBRBPolicy(LRUPolicy(), predictor, enable_bypass=False)
        cache = Cache(geometry, policy)
        for seq, block_number in enumerate([0, 1, 2]):
            cache.access(CacheAccess(address=block_number * 64, pc=0x1, seq=seq))
        assert not cache.contains(0)  # plain LRU victim

    def test_replacement_can_be_disabled(self):
        geometry = CacheGeometry(size_bytes=1 * 2 * 64, associativity=2, block_bytes=64)
        predictor = SamplingDeadBlockPredictor(sampler_assoc=2)
        policy = DBRBPolicy(
            LRUPolicy(), predictor, enable_bypass=False, enable_replacement=False
        )
        cache = Cache(geometry, policy)
        for seq, block_number in enumerate(range(2)):
            cache.access(CacheAccess(address=block_number * 64, pc=0x1, seq=seq))
        for _, way, block in cache.resident_blocks():
            block.predicted_dead = True  # should be ignored
        cache.access(CacheAccess(address=5 * 64, pc=0x1, seq=9))
        assert not cache.contains(0)  # LRU victim despite dead bits


class TestAblationConfigurations:
    @pytest.mark.parametrize("use_sampler", [True, False])
    @pytest.mark.parametrize("skewed", [True, False])
    def test_all_component_combinations_run(self, use_sampler, skewed):
        predictor = SamplingDeadBlockPredictor(
            sampler_assoc=4, use_sampler=use_sampler, skewed=skewed
        )
        policy = DBRBPolicy(LRUPolicy(), predictor)
        cache = Cache(small_geometry(), policy)
        for access in hot_and_stream_workload(rounds=5):
            cache.access(access)
        assert cache.stats.accesses > 0

    def test_no_sampler_learns_from_every_eviction(self):
        predictor = SamplingDeadBlockPredictor(use_sampler=False)
        policy = DBRBPolicy(LRUPolicy(), predictor)
        cache = Cache(small_geometry(), policy)
        for access in hot_and_stream_workload(rounds=10):
            cache.access(access)
        assert predictor.sampler is None
        assert predictor._predict(STREAM_PC)

    def test_predictor_repr_mentions_configuration(self):
        assert "skewed" in repr(SamplingDeadBlockPredictor())
        assert "single-table" in repr(SamplingDeadBlockPredictor(skewed=False))
        assert "no-sampler" in repr(SamplingDeadBlockPredictor(use_sampler=False))
