"""Tests for the efficiency (Fig 1) and accuracy (Fig 9) instruments."""

import pytest

from repro.analysis import AccuracyObserver, EfficiencyObserver, render_greyscale
from repro.cache import Cache, CacheAccess
from repro.core import DBRBPolicy, SamplingDeadBlockPredictor
from repro.replacement import LRUPolicy

from tests.conftest import make_access, tiny_geometry


def run_with_efficiency(block_seq, sets=1, assoc=2):
    geometry = tiny_geometry(sets=sets, assoc=assoc)
    cache = Cache(geometry, LRUPolicy())
    observer = EfficiencyObserver(cache)
    cache.add_observer(observer)
    seq = 0
    for number in block_seq:
        cache.access(make_access(number, geometry, seq=seq))
        seq += 1
    observer.finalize(cache, seq)
    return observer


class TestEfficiencyObserver:
    def test_single_touch_block_is_all_dead(self):
        # Block 0 filled at 0, never re-touched, evicted at seq 2.
        observer = run_with_efficiency([0, 1, 2], sets=1, assoc=1)
        # Residencies: block0 [0,1) live 0; block1 [1,2) live 0;
        # block2 [2,3) resident at end, live 0.
        assert observer.live_time == 0
        assert observer.efficiency == 0.0

    def test_fully_live_block(self):
        # Block 0 touched at every step: live 3 (fill@0 .. last hit@3) of
        # total 4 (finalized one step past the last access).
        observer = run_with_efficiency([0, 0, 0, 0], sets=1, assoc=1)
        assert observer.efficiency == pytest.approx(0.75)

    def test_half_live_block(self):
        # Block 0: fill@0, last hit@2, evicted@4 -> live 2 of total 4.
        observer = run_with_efficiency([0, 0, 0, 1, 4], sets=1, assoc=1)
        assert observer.live_time >= 2

    def test_finalize_accounts_residents(self):
        observer = run_with_efficiency([0], sets=1, assoc=2)
        assert observer.total_time == 1  # resident from 0 to finalize at 1

    def test_finalize_twice_rejected(self):
        geometry = tiny_geometry(sets=1, assoc=1)
        cache = Cache(geometry, LRUPolicy())
        observer = EfficiencyObserver(cache)
        cache.add_observer(observer)
        observer.finalize(cache, 0)
        with pytest.raises(RuntimeError):
            observer.finalize(cache, 1)

    def test_matrix_shape(self):
        observer = run_with_efficiency([0, 1, 2, 3], sets=2, assoc=2)
        matrix = observer.efficiency_matrix()
        assert len(matrix) == 2
        assert len(matrix[0]) == 2

    def test_frame_efficiency_unused_frame(self):
        geometry = tiny_geometry(sets=2, assoc=2)
        cache = Cache(geometry, LRUPolicy())
        observer = EfficiencyObserver(cache)
        assert observer.frame_efficiency(1, 1) is None

    def test_dbrb_improves_efficiency_on_scan_reuse(self):
        """The Figure 1 effect in miniature: bypassing a dead stream makes
        resident frames spend more of their time live."""
        from repro.cache import CacheGeometry

        geometry = CacheGeometry(32 * 4 * 64, 4, 64)

        def workload():
            seq = 0
            stream = 0
            for _ in range(25):
                for i in range(96):
                    yield CacheAccess(address=i * 64, pc=0x10, seq=seq)
                    seq += 1
                for _ in range(128):
                    yield CacheAccess(address=(1 << 20) + stream * 64, pc=0x99, seq=seq)
                    seq += 1
                    stream += 1

        def run(policy):
            cache = Cache(geometry, policy)
            observer = EfficiencyObserver(cache)
            cache.add_observer(observer)
            last = 0
            for access in workload():
                cache.access(access)
                last = access.seq
            observer.finalize(cache, last + 1)
            return observer.efficiency

        lru_eff = run(LRUPolicy())
        dbrb_eff = run(
            DBRBPolicy(
                LRUPolicy(), SamplingDeadBlockPredictor(sampler_assoc=8)
            )
        )
        assert dbrb_eff > lru_eff


class TestRenderGreyscale:
    def test_empty(self):
        assert "empty" in render_greyscale([])

    def test_dimensions(self):
        matrix = [[0.0, 1.0]] * 8
        art = render_greyscale(matrix, max_rows=4)
        lines = art.split("\n")
        assert len(lines) == 4
        assert all(len(line) == 2 for line in lines)

    def test_dark_for_dead_bright_for_live(self):
        art = render_greyscale([[0.0, 0.99]])
        assert art[0] == " "   # dead frame: darkest ramp entry
        assert art[1] == "@"   # live frame: brightest

    def test_downsampling_averages(self):
        matrix = [[0.0]] * 16 + [[1.0]] * 16
        art = render_greyscale(matrix, max_rows=2)
        lines = art.split("\n")
        assert lines[0] == " "
        assert lines[1] == "@"


class TestAccuracyObserver:
    def build(self, sets=1, assoc=2):
        geometry = tiny_geometry(sets=sets, assoc=assoc)
        cache = Cache(geometry, LRUPolicy())
        observer = AccuracyObserver(cache)
        cache.add_observer(observer)
        return geometry, cache, observer

    def test_no_predictions_no_positives(self):
        geometry, cache, observer = self.build()
        for seq, number in enumerate([0, 1, 0, 1]):
            cache.access(make_access(number, geometry, seq=seq))
        assert observer.accesses == 4
        assert observer.positives == 0
        assert observer.coverage == 0.0
        assert observer.false_positive_rate == 0.0

    def test_positive_confirmed_by_eviction(self):
        geometry, cache, observer = self.build(assoc=1)
        cache.access(make_access(0, geometry, seq=0))
        # Mark resident block dead by hand (as a predictor would).
        (_, way, block), = cache.resident_blocks()
        block.predicted_dead = True
        observer._pending[0][way] = True
        observer.positives += 1
        cache.access(make_access(1, geometry, seq=1))  # evicts block 0
        assert observer.false_positives == 0

    def test_positive_refuted_by_rehit(self):
        geometry, cache, observer = self.build(assoc=1)
        cache.access(make_access(0, geometry, seq=0))
        (_, way, block), = cache.resident_blocks()
        block.predicted_dead = True
        observer._pending[0][way] = True
        observer.positives += 1
        cache.access(make_access(0, geometry, seq=1))  # re-hit: refuted
        assert observer.false_positives == 1

    def test_bypass_counts_as_positive(self):
        from repro.replacement.base import ReplacementPolicy

        class AlwaysBypass(ReplacementPolicy):
            def should_bypass(self, set_index, access):
                return True

            def choose_victim(self, set_index, access):
                return 0

        geometry = tiny_geometry(sets=1, assoc=2)
        cache = Cache(geometry, AlwaysBypass())
        observer = AccuracyObserver(cache)
        cache.add_observer(observer)
        cache.access(make_access(0, geometry, seq=0))
        assert observer.positives == 1
        assert observer.coverage == 1.0

    def test_quick_bypass_return_is_false_positive(self):
        from repro.replacement.base import ReplacementPolicy

        class AlwaysBypass(ReplacementPolicy):
            def should_bypass(self, set_index, access):
                return True

            def choose_victim(self, set_index, access):
                return 0

        geometry = tiny_geometry(sets=1, assoc=2)
        cache = Cache(geometry, AlwaysBypass())
        observer = AccuracyObserver(cache)
        cache.add_observer(observer)
        cache.access(make_access(0, geometry, seq=0))
        cache.access(make_access(0, geometry, seq=1))  # back within window
        assert observer.false_positives == 1

    def test_distant_bypass_return_not_penalized(self):
        from repro.replacement.base import ReplacementPolicy

        class AlwaysBypass(ReplacementPolicy):
            def should_bypass(self, set_index, access):
                return True

            def choose_victim(self, set_index, access):
                return 0

        geometry = tiny_geometry(sets=1, assoc=2)
        cache = Cache(geometry, AlwaysBypass())
        observer = AccuracyObserver(cache)
        cache.add_observer(observer)
        cache.access(make_access(0, geometry, seq=0))
        for seq in range(1, 8):  # > assoc other misses to the set
            cache.access(make_access(seq, geometry, seq=seq))
        cache.access(make_access(0, geometry, seq=9))
        # Block 0 returned only after the window: the bypass was correct.
        assert observer.false_positives == 0
