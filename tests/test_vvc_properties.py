"""Property-based invariants for the victim-relocation cache."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import Cache, CacheAccess, CacheGeometry
from repro.core import DBRBPolicy, SamplingDeadBlockPredictor
from repro.replacement import LRUPolicy
from repro.vvc import VictimRelocationCache


def geometry():
    return CacheGeometry(4 * 2 * 64, 2, 64)


def build_accesses(pairs):
    return [
        CacheAccess(address=block * 64, pc=0x400 + 4 * pc, seq=seq)
        for seq, (block, pc) in enumerate(pairs)
    ]


access_strings = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 4)),
    min_size=1,
    max_size=200,
)


def run_vvc(pairs):
    cache = VictimRelocationCache(
        geometry(),
        DBRBPolicy(LRUPolicy(), SamplingDeadBlockPredictor(sampler_assoc=2)),
    )
    hits = [cache.access(access) for access in build_accesses(pairs)]
    return cache, hits


@settings(max_examples=40, deadline=None)
@given(pairs=access_strings)
def test_no_block_is_resident_twice(pairs):
    """A block must never exist both natively and as a relocated copy
    (or as two relocated copies)."""
    cache, _ = run_vvc(pairs)
    identities = []
    for set_index, way, block in cache.resident_blocks():
        if "vvc_home_set" in block.meta:
            identities.append((block.meta["vvc_home_set"], block.meta["vvc_home_tag"]))
        else:
            identities.append((set_index, block.tag))
    assert len(identities) == len(set(identities))


@settings(max_examples=40, deadline=None)
@given(pairs=access_strings)
def test_relocated_frames_use_sentinel_tag(pairs):
    """Relocated frames carry the impossible tag so native lookups in the
    partner set can never falsely hit them."""
    cache, _ = run_vvc(pairs)
    for _, _, block in cache.resident_blocks():
        if "vvc_home_set" in block.meta:
            assert block.tag == -1
        else:
            assert block.tag >= 0


@settings(max_examples=30, deadline=None)
@given(pairs=access_strings)
def test_vvc_never_misses_what_plain_dbrb_hits_overall(pairs):
    """Victim relocation may only *add* retention: total hits with VVC are
    >= total hits of the identical cache without relocation, up to the
    small perturbation promotions introduce (bounded here)."""
    plain = Cache(
        geometry(),
        DBRBPolicy(LRUPolicy(), SamplingDeadBlockPredictor(sampler_assoc=2)),
    )
    plain_hits = sum(plain.access(a) for a in build_accesses(pairs))
    _, vvc_hit_list = run_vvc(pairs)
    vvc_hits = sum(vvc_hit_list)
    assert vvc_hits >= plain_hits - 2  # promotions can cost a couple of evictions


@settings(max_examples=40, deadline=None)
@given(pairs=access_strings)
def test_stats_identities_still_hold(pairs):
    cache, _ = run_vvc(pairs)
    stats = cache.stats
    assert stats.hits + stats.misses == stats.accesses
    resident = sum(1 for _ in cache.resident_blocks())
    # Relocations move blocks without touching fills/evictions symmetry;
    # promotions refill at home.  Occupancy still cannot exceed capacity.
    assert resident <= cache.geometry.num_blocks
