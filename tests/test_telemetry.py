"""Unit and integration tests for the telemetry subsystem.

Covers the four layers of :mod:`repro.telemetry` -- interval probes,
run manifests, sweep events, exporters -- plus the sweep integration
(``events_file`` / ``manifest_path`` on the parallel runner) and the
``repro telemetry`` / ``repro report`` CLI commands.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.harness import ExperimentConfig, WorkloadCache
from repro.harness.parallel import parallel_single_thread_comparison
from repro.telemetry import (
    EventLog,
    IntervalRecorder,
    NULL_PROBE,
    ProgressRenderer,
    RunManifest,
    SweepTelemetry,
    collect_environment,
    read_events,
    render_report,
    sparkline,
    write_csv,
    write_ndjson,
)

TINY = ExperimentConfig(scale=32, instructions=20_000, seed=3)


# ----------------------------------------------------------------------
# probe layer
# ----------------------------------------------------------------------
def test_null_probe_is_disabled_and_inert():
    assert NULL_PROBE.enabled is False
    # The full interface is callable without side effects.
    NULL_PROBE.set_context(workload="x")
    NULL_PROBE.begin_run(None, 10)
    NULL_PROBE.on_epoch(None, 5)
    NULL_PROBE.end_run(None, 10)
    assert NULL_PROBE.resolve_epoch(100) == 100


def test_recorder_epoch_resolution():
    assert IntervalRecorder(epochs=4).resolve_epoch(100) == 25
    assert IntervalRecorder(epochs=4).resolve_epoch(101) == 26  # ceil
    assert IntervalRecorder(epochs=1000).resolve_epoch(10) == 1
    assert IntervalRecorder(epoch_accesses=7).resolve_epoch(100) == 7
    with pytest.raises(ValueError):
        IntervalRecorder(epochs=0)
    with pytest.raises(ValueError):
        IntervalRecorder(epoch_accesses=0)


def test_recorder_counter_vs_gauge_convention():
    """``_count`` keys difference into ``_per_epoch``; others pass raw."""

    class FakeStats:
        accesses = hits = misses = fills = 0
        evictions = writebacks = bypasses = dead_block_victims = 0

        def snapshot(self):
            return self

    class FakePolicy:
        def __init__(self):
            self.events = 0

        def telemetry_snapshot(self):
            return {"thing_count": self.events, "level": self.events * 0.5}

    class FakeCache:
        stats = FakeStats()
        policy = FakePolicy()
        _observers = ()

    cache = FakeCache()
    recorder = IntervalRecorder(epochs=2)
    recorder.begin_run(cache, 20)
    cache.policy.events = 3
    recorder.on_epoch(cache, 10)
    cache.policy.events = 10
    recorder.on_epoch(cache, 20)
    per_epoch = recorder.series("thing_per_epoch")
    assert per_epoch == [3, 7]
    assert recorder.series("level") == [1.5, 5.0]


def test_render_report_and_sparkline():
    assert sparkline([1, 2, 3]) == "▁▄█"
    assert sparkline([5, 5, 5]) == "▅▅▅"  # flat series: mid-height
    assert sparkline([None, 1.0]) == " ▅"  # single value is also flat
    assert sparkline(list(range(100)), width=10) != ""
    assert len(sparkline(list(range(100)), width=10)) == 10

    recorder = IntervalRecorder(epochs=2)
    assert render_report(recorder) == "(no samples recorded)"


# ----------------------------------------------------------------------
# manifest layer
# ----------------------------------------------------------------------
def test_manifest_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "32")
    manifest = RunManifest(
        command="suite",
        config={"scale": 32},
        technique_keys=["sampler"],
        benchmarks=["mcf"],
        started_at=100.0,
        jobs=2,
    )
    manifest.record_cell(
        "mcf/sampler", "ok",
        timing={"wall_seconds": 1.25, "cpu_seconds": 1.0},
    )
    manifest.finalize("ok", finished_at=107.5)
    path = tmp_path / "deep" / "manifest.json"
    manifest.write(str(path))

    data = RunManifest.load(str(path))
    assert data["status"] == "ok"
    assert data["wall_seconds"] == 7.5
    assert data["cells"]["mcf/sampler"]["wall_seconds"] == 1.25
    assert data["environment"]["repro_env"]["REPRO_SCALE"] == "32"
    assert "python" in data["environment"]
    assert "sha" in data["git"] and "dirty" in data["git"]
    # No temp droppings from the atomic write.
    assert list(path.parent.iterdir()) == [path]


def test_manifest_load_rejects_non_manifests(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(ValueError):
        RunManifest.load(str(path))


def test_collect_environment_shape():
    env = collect_environment()
    assert set(env) >= {"python", "platform", "repro_env", "libraries"}


# ----------------------------------------------------------------------
# events layer
# ----------------------------------------------------------------------
def test_sweep_telemetry_event_stream(tmp_path):
    clock_value = [0.0]

    def clock():
        clock_value[0] += 1.0
        return clock_value[0]

    path = tmp_path / "events.ndjson"
    log = EventLog(str(path))
    manifest = RunManifest()
    telemetry = SweepTelemetry(sinks=[log], manifest=manifest, clock=clock)
    telemetry.sweep_started(3, ["mcf"], ["sampler"], jobs=2)
    telemetry.cell_resumed("mcf/lru(baseline)")
    telemetry.cell_retried("mcf/sampler", "injected", attempt=2)
    telemetry.cell_finished(
        "mcf/sampler", "ok", timing={"wall_seconds": 0.5, "cpu_seconds": 0.4}
    )
    telemetry.cell_finished("mcf/rrip", "failed")
    telemetry.sweep_finished("partial")
    telemetry.close()

    events = read_events(str(path))
    kinds = [event["event"] for event in events]
    assert kinds == [
        "sweep_started", "cell_resumed", "cell_retried",
        "cell_finished", "cell_finished", "sweep_finished",
    ]
    assert [event["seq"] for event in events] == list(range(6))
    finished = events[3]
    assert finished["benchmark"] == "mcf"
    assert finished["technique"] == "sampler"
    assert finished["done"] == 2 and finished["total"] == 3
    assert finished["eta_seconds"] is not None
    assert events[-1]["status"] == "partial"
    assert events[-1]["done"] == 3
    # The manifest mirrors the outcomes, including the retry count.
    assert manifest.cells["mcf/sampler"]["retries"] == 2
    assert manifest.cells["mcf/rrip"]["status"] == "failed"
    assert manifest.cells["mcf/lru(baseline)"]["resumed"] is True


def test_read_events_rejects_malformed_lines(tmp_path):
    path = tmp_path / "bad.ndjson"
    path.write_text('{"event": "sweep_started"}\nnot json\n')
    with pytest.raises(ValueError, match="bad.ndjson:2"):
        read_events(str(path))


def test_progress_renderer_lines():
    stream = io.StringIO()
    renderer = ProgressRenderer(stream)
    telemetry = SweepTelemetry(sinks=[renderer])
    telemetry.sweep_started(2, ["mcf"], ["sampler"], jobs=1)
    telemetry.cell_started("mcf/sampler")
    telemetry.cell_finished(
        "mcf/sampler", "ok", timing={"wall_seconds": 0.25, "cpu_seconds": 0.2}
    )
    telemetry.cell_timed_out("mcf/rrip", 30.0)
    telemetry.sweep_degraded("lost workers")
    telemetry.sweep_finished("ok")
    lines = stream.getvalue().splitlines()
    assert lines[0].startswith("[sweep] 2 cells")
    assert "[start] mcf/sampler" in lines[1]
    assert "[ok] mcf/sampler" in lines[2] and "(1/2)" in lines[2]
    assert "[timeout] mcf/rrip" in lines[3]
    assert "[degrade]" in lines[4]
    assert "[sweep ok] 1/2" in lines[5]


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def _small_recorder():
    from repro.harness import timeseries_experiment

    cache = WorkloadCache(TINY)
    return timeseries_experiment(cache, "mcf", "sampler", epochs=4).recorder


def test_ndjson_and_csv_exports(tmp_path):
    recorder = _small_recorder()
    ndjson_path = tmp_path / "series.ndjson"
    csv_path = tmp_path / "series.csv"
    write_ndjson(recorder, str(ndjson_path))
    write_csv(recorder, str(csv_path))

    lines = ndjson_path.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["kind"] == "context"
    assert header["workload"] == "mcf"
    assert header["epochs"] == len(recorder.samples)
    rows = [json.loads(line) for line in lines[1:]]
    assert len(rows) == len(recorder.samples)
    assert all("miss_rate" in row and "coverage" in row for row in rows)

    import csv as csv_module

    with open(csv_path, newline="") as handle:
        parsed = list(csv_module.DictReader(handle))
    assert len(parsed) == len(recorder.samples)
    assert float(parsed[0]["accesses"]) == recorder.samples[0].accesses

    report = render_report(recorder)
    assert "mcf" in report and "miss_rate" in report and "coverage" in report


# ----------------------------------------------------------------------
# sweep integration: events + manifest through the parallel runner
# ----------------------------------------------------------------------
def test_serial_sweep_emits_events_and_manifest(tmp_path):
    events = io.StringIO()
    manifest_path = tmp_path / "manifest.json"
    comparison = parallel_single_thread_comparison(
        TINY, ("sampler",), ("mcf",), jobs=1,
        events_file=events, manifest_path=str(manifest_path),
        command="test-sweep",
    )
    assert not comparison.is_partial

    lines = [json.loads(line) for line in events.getvalue().splitlines()]
    kinds = [event["event"] for event in lines]
    assert kinds[0] == "sweep_started"
    assert kinds[-1] == "sweep_finished"
    assert kinds.count("cell_started") == 2  # baseline + sampler
    assert kinds.count("cell_finished") == 2
    finished = [e for e in lines if e["event"] == "cell_finished"]
    assert all(e["status"] == "ok" for e in finished)
    assert all(e["wall_seconds"] > 0 for e in finished)

    data = RunManifest.load(str(manifest_path))
    assert data["status"] == "ok"
    assert data["command"] == "test-sweep"
    assert data["config"]["scale"] == 32
    assert set(data["cells"]) == {"mcf/lru(baseline)", "mcf/sampler"}
    assert all(
        cell["status"] == "ok" and cell["cpu_seconds"] >= 0
        for cell in data["cells"].values()
    )


def test_resumed_cells_appear_in_event_stream(tmp_path):
    store_dir = tmp_path / "ckpt"
    parallel_single_thread_comparison(
        TINY, ("sampler",), ("mcf",), jobs=1, checkpoint=str(store_dir),
    )
    # Default manifest location: next to the checkpoint store.
    assert (store_dir / "manifest.json").exists()

    events = io.StringIO()
    parallel_single_thread_comparison(
        TINY, ("sampler",), ("mcf",), jobs=1, checkpoint=str(store_dir),
        resume=True, events_file=events,
    )
    kinds = [
        json.loads(line)["event"] for line in events.getvalue().splitlines()
    ]
    assert kinds.count("cell_resumed") == 2
    assert kinds.count("cell_started") == 0

    data = RunManifest.load(str(store_dir / "manifest.json"))
    assert all(cell.get("resumed") for cell in data["cells"].values())


def test_sweep_without_observability_writes_nothing(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    comparison = parallel_single_thread_comparison(
        TINY, ("sampler",), ("mcf",), jobs=1,
    )
    assert not comparison.is_partial
    assert list(tmp_path.iterdir()) == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _cli(argv, monkeypatch, capsys):
    from repro.__main__ import main

    monkeypatch.setenv("REPRO_SCALE", "32")
    monkeypatch.setenv("REPRO_INSTRUCTIONS", "20000")
    assert main(argv) == 0
    return capsys.readouterr().out


def test_cli_telemetry_dump(tmp_path, monkeypatch, capsys):
    ndjson_path = tmp_path / "ts.ndjson"
    out = _cli(
        ["telemetry", "mcf", "sampler", "--epochs", "4",
         "--ndjson", str(ndjson_path)],
        monkeypatch, capsys,
    )
    assert "NDJSON" in out
    rows = [json.loads(line) for line in ndjson_path.read_text().splitlines()]
    assert rows[0]["kind"] == "context"
    assert len(rows) == 5  # header + 4 epochs


def test_cli_report_timeseries(monkeypatch, capsys):
    out = _cli(
        ["report", "--timeseries", "mcf", "--epochs", "4"],
        monkeypatch, capsys,
    )
    assert "mcf" in out
    for metric in ("miss_rate", "coverage", "false_positive_rate",
                   "bypass_rate"):
        assert metric in out, metric


def test_cli_sweep_events_file(tmp_path, monkeypatch, capsys):
    events_path = tmp_path / "events.ndjson"
    _cli(
        ["run", "mcf", "sampler", "--events-file", str(events_path),
         "--manifest", str(tmp_path / "m.json")],
        monkeypatch, capsys,
    )
    kinds = [event["event"] for event in read_events(str(events_path))]
    assert kinds[0] == "sweep_started" and kinds[-1] == "sweep_finished"
    assert RunManifest.load(str(tmp_path / "m.json"))["status"] == "ok"


def test_env_knobs_enable_observability(tmp_path, monkeypatch):
    events_path = tmp_path / "env-events.ndjson"
    manifest_path = tmp_path / "env-manifest.json"
    monkeypatch.setenv("REPRO_EVENTS_FILE", str(events_path))
    monkeypatch.setenv("REPRO_MANIFEST", str(manifest_path))
    parallel_single_thread_comparison(TINY, ("sampler",), ("mcf",), jobs=1)
    assert read_events(str(events_path))
    assert RunManifest.load(str(manifest_path))["status"] == "ok"


def test_events_file_default_manifest_sits_next_to_it(tmp_path):
    events_path = tmp_path / "sweep.ndjson"
    parallel_single_thread_comparison(
        TINY, ("sampler",), ("mcf",), jobs=1, events_file=str(events_path),
    )
    sidecar = tmp_path / "sweep.ndjson.manifest.json"
    assert sidecar.exists()
    assert RunManifest.load(str(sidecar))["status"] == "ok"
