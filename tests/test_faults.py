"""The fault-tolerant sweep harness.

These tests inject deterministic worker faults (``REPRO_FAULT_INJECT``)
into real spawn-context pools and pin the load-bearing promises of
:mod:`repro.harness.faults` / :mod:`repro.harness.checkpoint`:

* crashes, hangs, and transient exceptions are retried / timed out /
  degraded to serial without losing completed cells;
* a sweep killed mid-run resumes from its checkpoint and the final
  comparison is **bit-identical** to an uninterrupted serial run;
* unrecoverable failures surface as a structured taxonomy
  (:class:`CellTimeout` / :class:`CellCrashed` / :class:`SweepAborted`)
  naming the failing cell, or as a partial result when allowed.

Everything here is ``@pytest.mark.faults`` (``make test-faults``): the
tests spawn pools and stall workers on purpose, so each runs under the
hard per-test deadline armed in ``tests/conftest.py``.
"""

from __future__ import annotations

import pytest

from repro.harness.checkpoint import CheckpointStore
from repro.harness.experiments import single_thread_comparison
from repro.harness.faults import (
    CellCrashed,
    CellTimeout,
    FaultPolicy,
    SweepAborted,
    cell_label,
    drain_cleanup_hooks,
    maybe_inject_fault,
    parse_fault_spec,
    run_cells_supervised,
)
from repro.harness.parallel import parallel_single_thread_comparison
from repro.harness.runner import ExperimentConfig, WorkloadCache

BENCHMARKS = ("perlbench", "mcf")
TECHNIQUE_KEYS = ("rrip",)
SMALL = ExperimentConfig(instructions=20_000)

#: Fast supervision for tests: no backoff sleeps, short watchdog.
FAST = dict(backoff=0.0, watchdog=4.0)


def serial_reference():
    return single_thread_comparison(WorkloadCache(SMALL), TECHNIQUE_KEYS, BENCHMARKS)


def assert_bit_identical(reference, comparison):
    for benchmark in BENCHMARKS:
        assert (
            reference.baseline[benchmark].llc_stats.snapshot()
            == comparison.baseline[benchmark].llc_stats.snapshot()
        )
        assert reference.baseline[benchmark].ipc == comparison.baseline[benchmark].ipc
        for key in TECHNIQUE_KEYS:
            mine = reference.results[benchmark][key]
            theirs = comparison.results[benchmark][key]
            assert mine.llc_stats.snapshot() == theirs.llc_stats.snapshot()
            assert mine.llc_hits == theirs.llc_hits
            assert mine.ipc == theirs.ipc


class TestFaultSpec:
    def test_parse_modes_and_probabilities(self):
        assert parse_fault_spec("crash:0.1,hang:0.05") == {
            "crash": 0.1, "hang": 0.05,
        }

    def test_bare_mode_means_always(self):
        assert parse_fault_spec("crash") == {"crash": 1.0}

    def test_empty_and_none_disable(self):
        assert parse_fault_spec(None) == {}
        assert parse_fault_spec("  ") == {}

    @pytest.mark.parametrize("bad", ["explode:0.5", "crash:nan-ish", "crash:1.5"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)

    def test_injection_is_deterministic_per_attempt(self):
        # With probability 1.0 the 'raise' mode must fire on every
        # attempt, and the exception names the cell and attempt.
        with pytest.raises(RuntimeError, match="mcf/rrip.*attempt 3"):
            maybe_inject_fault("mcf", "rrip", 3, spec={"raise": 1.0})
        # Probability 0.0 never fires.
        maybe_inject_fault("mcf", "rrip", 3, spec={"raise": 0.0})

    def test_cell_label_names_baseline(self):
        assert cell_label(("mcf", None)) == "mcf/lru(baseline)"


class TestFaultPolicyEnv:
    def test_defaults(self, monkeypatch):
        for name in ("REPRO_CELL_TIMEOUT", "REPRO_CELL_RETRIES", "REPRO_RETRY_BACKOFF"):
            monkeypatch.delenv(name, raising=False)
        policy = FaultPolicy.from_env()
        assert policy.cell_timeout is None
        assert policy.max_retries == 2
        assert policy.degrade_serially and not policy.allow_partial

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "1.5")
        monkeypatch.setenv("REPRO_CELL_RETRIES", "0")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.25")
        policy = FaultPolicy.from_env()
        assert policy.cell_timeout == 1.5
        assert policy.max_retries == 0
        assert policy.backoff == 0.25

    def test_zero_backoff_is_legal(self, monkeypatch):
        # "retry immediately" is a valid choice (the fault tests rely on
        # it); only the timeout has to be strictly positive.
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        assert FaultPolicy.from_env().backoff == 0.0
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "-0.1")
        with pytest.raises(ValueError, match="non-negative"):
            FaultPolicy.from_env()

    @pytest.mark.parametrize(
        "name,value",
        [
            ("REPRO_CELL_TIMEOUT", "zero"),
            ("REPRO_CELL_TIMEOUT", "-1"),
            ("REPRO_CELL_RETRIES", "-2"),
            ("REPRO_CELL_RETRIES", "two"),
        ],
    )
    def test_invalid_env_rejected(self, monkeypatch, name, value):
        monkeypatch.setenv(name, value)
        with pytest.raises(ValueError):
            FaultPolicy.from_env()

    def test_watchdog_always_finite(self):
        assert FaultPolicy().effective_watchdog() > 0
        assert FaultPolicy(cell_timeout=2.0).effective_watchdog() > 2.0
        assert FaultPolicy(watchdog=7.0).effective_watchdog() == 7.0


class TestCleanupHooks:
    """The supervised-cleanup drain: LIFO order, raise-tolerant.

    Regression for the bug where one raising hook skipped every later
    teardown -- most importantly the shared-memory stream unlink, which
    then leaked a segment per crashed sweep.
    """

    def test_hooks_drain_in_lifo_order(self):
        order = []
        errors = drain_cleanup_hooks(
            [lambda: order.append(1), lambda: order.append(2), lambda: order.append(3)]
        )
        assert order == [3, 2, 1]
        assert errors == []

    def test_raising_hook_is_reported_and_later_hooks_still_run(self):
        order = []

        def unlink_shm():
            order.append("shm")
            raise OSError("segment already gone")

        messages = []
        errors = drain_cleanup_hooks(
            # Acquisition order: pool teardown first, then the shm
            # export -- so the raiser runs *first* in LIFO and must not
            # take the pool hook down with it.
            [lambda: order.append("pool"), unlink_shm],
            on_error=messages.append,
        )
        assert order == ["shm", "pool"]
        assert len(errors) == 1 and isinstance(errors[0], OSError)
        assert "unlink_shm" in messages[0]
        assert "continuing" in messages[0]

    def test_default_report_goes_to_stderr(self, capsys):
        def broken():
            raise RuntimeError("disc full")

        errors = drain_cleanup_hooks([broken])
        assert len(errors) == 1
        captured = capsys.readouterr()
        assert "broken" in captured.err and "disc full" in captured.err

    def test_empty_and_single_callable_forms(self):
        assert drain_cleanup_hooks([]) == []
        ran = []
        assert drain_cleanup_hooks([lambda: ran.append(True)]) == []
        assert ran == [True]


@pytest.mark.faults
class TestSupervisedCleanup:
    def test_supervision_drains_every_hook_despite_a_raiser(self):
        # A real supervised run (spawn pool, one cell) whose cleanup
        # list contains a raising hook in the middle: all three hooks
        # run, LIFO, and the sweep itself still succeeds.
        from repro.harness.parallel import _run_cell_supervised, make_cell_pool_factory

        order = []

        def early():
            order.append("early")

        def raiser():
            order.append("raiser")
            raise OSError("unlink failed")

        def late():
            order.append("late")

        results = {}
        failures = run_cells_supervised(
            make_cell_pool_factory(SMALL, 1),
            _run_cell_supervised,
            [("perlbench", None)],
            FaultPolicy(max_retries=0, **FAST),
            on_success=lambda cell, result: results.__setitem__(cell, result),
            cleanup=[early, raiser, late],
        )
        assert failures == []
        assert ("perlbench", None) in results
        assert order == ["late", "raiser", "early"]


@pytest.mark.faults
class TestCrashRecovery:
    def test_transient_faults_are_retried_bit_identically(self, monkeypatch):
        # Half the (cell, attempt) draws raise; retries redraw and the
        # sweep completes with results identical to the serial run.
        monkeypatch.setenv("REPRO_FAULT_INJECT", "raise:0.5")
        comparison = parallel_single_thread_comparison(
            SMALL, TECHNIQUE_KEYS, BENCHMARKS, jobs=2,
            fault_policy=FaultPolicy(max_retries=5, **FAST),
        )
        assert not comparison.is_partial
        assert_bit_identical(serial_reference(), comparison)

    def test_hard_crashes_degrade_to_serial(self, monkeypatch):
        # Every parallel attempt dies via os._exit; graceful degradation
        # re-runs the cells in-process (where injection never applies)
        # and the sweep still completes bit-identically.
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:1.0")
        comparison = parallel_single_thread_comparison(
            SMALL, TECHNIQUE_KEYS, BENCHMARKS, jobs=2,
            fault_policy=FaultPolicy(max_retries=0, watchdog=2.0, backoff=0.0),
        )
        assert not comparison.is_partial
        assert comparison.failure_report() == ""
        assert_bit_identical(serial_reference(), comparison)

    def test_unrecoverable_crash_aborts_with_taxonomy(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:1.0")
        with pytest.raises(SweepAborted) as excinfo:
            parallel_single_thread_comparison(
                SMALL, TECHNIQUE_KEYS, BENCHMARKS, jobs=2,
                fault_policy=FaultPolicy(
                    max_retries=0, watchdog=2.0, backoff=0.0,
                    degrade_serially=False,
                ),
            )
        failures = excinfo.value.failures
        assert failures and all(isinstance(f, CellCrashed) for f in failures)
        # The taxonomy names the failing cells.
        assert {f.benchmark for f in failures} <= set(BENCHMARKS)

    def test_allow_partial_returns_completed_cells(self, monkeypatch):
        # Every worker attempt crashes, degradation is off, but partial
        # results are allowed: the sweep returns with every cell named
        # in the failure report instead of raising.
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:1.0")
        comparison = parallel_single_thread_comparison(
            SMALL, TECHNIQUE_KEYS, BENCHMARKS, jobs=2,
            fault_policy=FaultPolicy(
                max_retries=0, watchdog=2.0, backoff=0.0,
                degrade_serially=False,
            ),
            allow_partial=True,
        )
        assert comparison.is_partial
        assert len(comparison.failures) == len(BENCHMARKS) * (len(TECHNIQUE_KEYS) + 1)
        report = comparison.failure_report()
        assert "partial sweep" in report and "mcf" in report


@pytest.mark.faults
class TestTimeouts:
    def test_hung_workers_time_out_and_degrade(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "hang:1.0")
        comparison = parallel_single_thread_comparison(
            SMALL, TECHNIQUE_KEYS, ("perlbench",), jobs=2,
            fault_policy=FaultPolicy(
                cell_timeout=0.5, max_retries=0, watchdog=4.0, backoff=0.0,
            ),
        )
        assert not comparison.is_partial
        reference = single_thread_comparison(
            WorkloadCache(SMALL), TECHNIQUE_KEYS, ("perlbench",)
        )
        assert (
            reference.results["perlbench"]["rrip"].llc_hits
            == comparison.results["perlbench"]["rrip"].llc_hits
        )

    def test_timeout_failures_carry_cell_identity(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "hang:1.0")
        with pytest.raises(SweepAborted) as excinfo:
            parallel_single_thread_comparison(
                SMALL, TECHNIQUE_KEYS, ("perlbench",), jobs=2,
                fault_policy=FaultPolicy(
                    cell_timeout=0.5, max_retries=0, watchdog=4.0,
                    backoff=0.0, degrade_serially=False,
                ),
            )
        kinds = {type(f) for f in excinfo.value.failures}
        assert kinds <= {CellTimeout, CellCrashed}
        assert CellTimeout in kinds
        timeout = next(f for f in excinfo.value.failures if isinstance(f, CellTimeout))
        assert timeout.benchmark == "perlbench"


@pytest.mark.faults
class TestCheckpointResume:
    def test_killed_sweep_resumes_bit_identically(self, monkeypatch, tmp_path):
        """The acceptance scenario: a sweep dies mid-run, completed cells
        are on disk, and the resumed sweep equals an uninterrupted serial
        run bit-for-bit."""
        store = CheckpointStore(tmp_path / "ckpt")

        # Phase 1: half the (cell, attempt) draws raise and there are no
        # retries, so the sweep dies mid-run with some cells completed
        # and checkpointed, others not -- the "killed mid-run" half of
        # the acceptance scenario.  The injection hash is deterministic,
        # so the phase-1 outcome is pinned, not flaky.
        monkeypatch.setenv("REPRO_FAULT_INJECT", "raise:0.5")
        with pytest.raises(SweepAborted) as excinfo:
            parallel_single_thread_comparison(
                SMALL, TECHNIQUE_KEYS, BENCHMARKS, jobs=2,
                checkpoint=store,
                fault_policy=FaultPolicy(
                    max_retries=0, watchdog=4.0, backoff=0.0,
                    degrade_serially=False,
                ),
            )
        assert excinfo.value.failures  # the sweep really died mid-run
        completed_before = len(store)
        total_cells = len(BENCHMARKS) * (len(TECHNIQUE_KEYS) + 1)
        # The interruption left the store genuinely partial.
        assert 0 < completed_before < total_cells

        # Phase 2: faults off, resume from the checkpoint.
        monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
        resumed = parallel_single_thread_comparison(
            SMALL, TECHNIQUE_KEYS, BENCHMARKS, jobs=2,
            checkpoint=store, resume=True,
            fault_policy=FaultPolicy(max_retries=0, **FAST),
        )
        assert not resumed.is_partial
        assert len(store) == total_cells
        assert len(store) >= completed_before
        assert_bit_identical(serial_reference(), resumed)

        # Phase 3: a second resume comes entirely off disk (serial path,
        # zero cells to run) and is still identical.
        rerun = parallel_single_thread_comparison(
            SMALL, TECHNIQUE_KEYS, BENCHMARKS, jobs=1,
            checkpoint=store, resume=True,
        )
        assert_bit_identical(serial_reference(), rerun)

    def test_partial_success_checkpoints_survivors(self, monkeypatch, tmp_path):
        # Transient faults + retries: every completed cell lands in the
        # store even though some attempts failed along the way.
        store = CheckpointStore(tmp_path / "ckpt")
        monkeypatch.setenv("REPRO_FAULT_INJECT", "raise:0.5")
        comparison = parallel_single_thread_comparison(
            SMALL, TECHNIQUE_KEYS, BENCHMARKS, jobs=2,
            checkpoint=store,
            fault_policy=FaultPolicy(max_retries=5, **FAST),
        )
        assert not comparison.is_partial
        assert len(store) == len(BENCHMARKS) * (len(TECHNIQUE_KEYS) + 1)

    def test_resume_without_store_is_an_error(self):
        with pytest.raises(ValueError, match="checkpoint"):
            parallel_single_thread_comparison(
                SMALL, TECHNIQUE_KEYS, BENCHMARKS, jobs=1, resume=True,
            )

    def test_checkpoint_dir_env_wiring(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "env-ckpt"))
        comparison = parallel_single_thread_comparison(
            SMALL, TECHNIQUE_KEYS, ("perlbench",), jobs=1,
        )
        assert not comparison.is_partial
        store = CheckpointStore(tmp_path / "env-ckpt")
        assert len(store) == len(TECHNIQUE_KEYS) + 1
        # And a resume through the same env wiring comes off disk.
        resumed = parallel_single_thread_comparison(
            SMALL, TECHNIQUE_KEYS, ("perlbench",), jobs=1, resume=True,
        )
        assert (
            comparison.baseline["perlbench"].llc_stats.snapshot()
            == resumed.baseline["perlbench"].llc_stats.snapshot()
        )
