"""The HTTP API and client SDK against a live embedded server.

Every test here boots a real ``asyncio.start_server`` instance on an
ephemeral port (``ExperimentServer.start_in_thread``) and talks to it
through :class:`repro.service.client.ServiceClient` -- the same pairing
``make serve-smoke`` exercises.  All tests are
``@pytest.mark.service``: each runs under the hard SIGALRM deadline
from ``tests/conftest.py`` so a wedged server fails loudly.

The golden test at the bottom pins the service's core promise: a sweep
executed through queued jobs, parallel workers, and shared-memory
stream fan-out is **bit-identical** to the same sweep run serially
through the CLI harness path.
"""

from __future__ import annotations

import time

import pytest

from repro.harness.export import to_dict
from repro.harness.parallel import parallel_single_thread_comparison
from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.scheduler import ExperimentScheduler
from repro.service.server import ExperimentServer

pytestmark = pytest.mark.service

CONFIG = ExperimentConfig(instructions=20_000)
CONFIG_BODY = {"instructions": 20_000}


def serve(tmp_path, **scheduler_kwargs):
    """A live embedded server over tmp-rooted stores; returns (handle, client)."""
    scheduler_kwargs.setdefault("jobs", 1)
    scheduler = ExperimentScheduler(tmp_path / "service", **scheduler_kwargs)
    handle = ExperimentServer(scheduler, port=0).start_in_thread()
    # max_retries=0: backpressure tests assert on raw 429/503 answers,
    # which the client's retry policy would otherwise absorb.
    return handle, ServiceClient(
        f"http://127.0.0.1:{handle.port}", max_retries=0
    )


class TestEndpoints:
    def test_healthz_and_stats(self, tmp_path):
        handle, client = serve(tmp_path, start=False)
        try:
            health = client.healthz()
            assert health["status"] == "ok" and "version" in health
            stats = client.stats()
            assert stats["queue"]["depth"] == 0
            assert stats["workers"]["count"] >= 1
            assert set(stats["dedup"]) == {
                "checkpoint_hits", "inflight_hits", "hit_rate"
            }
        finally:
            handle.stop()

    def test_unknown_routes_and_jobs_are_404(self, tmp_path):
        handle, client = serve(tmp_path, start=False)
        try:
            for call in (
                lambda: client.get("job-nope"),
                lambda: client.result("job-nope"),
                lambda: client.cancel("job-nope"),
                lambda: client._request("GET", "/v2/anything"),
            ):
                with pytest.raises(ServiceError) as excinfo:
                    call()
                assert excinfo.value.status == 404
        finally:
            handle.stop()

    def test_bad_submissions_are_400(self, tmp_path):
        handle, client = serve(tmp_path, start=False)
        try:
            for body in (
                dict(benchmark="notabench"),
                dict(benchmark="mcf", technique="notatech"),
                dict(benchmarks=["mcf", "perlbench"]),  # cell with 2 benchmarks
                dict(benchmark="mcf", config={"scale": 0}),
                dict(benchmark="mcf", config={"typo": 1}),
            ):
                with pytest.raises(ServiceError) as excinfo:
                    client.submit(**body)
                assert excinfo.value.status == 400
        finally:
            handle.stop()

    def test_result_before_done_is_409(self, tmp_path):
        handle, client = serve(tmp_path, start=False)  # job stays queued
        try:
            job = client.submit(benchmark="perlbench", config=CONFIG_BODY)
            with pytest.raises(ServiceError) as excinfo:
                client.result(job["id"])
            assert excinfo.value.status == 409
        finally:
            handle.stop()

    def test_full_queue_is_429_with_retry_after(self, tmp_path):
        handle, client = serve(tmp_path, start=False, queue_depth=1)
        try:
            client.submit(benchmark="perlbench", config=CONFIG_BODY)
            with pytest.raises(ServiceError) as excinfo:
                client.submit(benchmark="mcf", config=CONFIG_BODY)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
        finally:
            handle.stop()

    def test_draining_server_refuses_submissions_503(self, tmp_path):
        handle, client = serve(tmp_path, start=False)
        try:
            handle.scheduler.drain(timeout=5.0)
            with pytest.raises(ServiceError) as excinfo:
                client.submit(benchmark="perlbench", config=CONFIG_BODY)
            assert excinfo.value.status == 503
        finally:
            handle.stop()

    def test_cancel_and_list(self, tmp_path):
        handle, client = serve(tmp_path, start=False)
        try:
            job = client.submit(benchmark="perlbench", config=CONFIG_BODY)
            cancelled = client.cancel(job["id"])
            assert cancelled["state"] == "cancelled"
            listed = client.list_jobs()
            assert [j["id"] for j in listed] == [job["id"]]
            assert listed[0]["state"] == "cancelled"
        finally:
            handle.stop()


class TestJobLifecycle:
    def test_submit_wait_result_and_events(self, tmp_path):
        handle, client = serve(tmp_path)
        try:
            job = client.submit(
                benchmark="perlbench", technique="rrip",
                config=CONFIG_BODY, client="alice",
            )
            assert job["state"] in ("queued", "running", "done")
            final = client.wait(job["id"], timeout=90.0)
            assert final["state"] == "done"
            assert final["progress"] == {
                "total": 1, "done": 1, "failed": 0, "pending": 0
            }
            result = client.result(job["id"])
            assert result["kind"] == "cell"
            assert result["llc"]["accesses"] > 0

            # The NDJSON stream replays the standard sweep story and
            # terminates (follow mode) because the job is terminal.
            events = list(client.stream_events(job["id"]))
            kinds = [event["event"] for event in events]
            assert kinds[0] == "sweep_started"
            assert kinds[-1] == "sweep_finished"
            assert events[-1]["status"] == "ok"
            assert all("seq" in event and "elapsed_seconds" in event
                       for event in events)
            # ?follow=0 dumps the same events without following.
            snapshot = list(client.stream_events(job["id"], follow=False))
            assert snapshot == events
        finally:
            handle.stop()

    def test_dedup_resubmission_is_instant_and_counted(self, tmp_path):
        handle, client = serve(tmp_path)
        try:
            spec = dict(benchmark="perlbench", technique="rrip", config=CONFIG_BODY)
            first = client.submit_and_wait(timeout=90.0, **spec)
            assert first["state"] == "done"
            again = client.submit(**spec)
            assert again["state"] == "done"  # done at admission: no wait
            assert again["dedup_cells"] == 1
            assert client.result(again["id"]) == client.result(first["id"])
            stats = client.stats()
            assert stats["dedup"]["checkpoint_hits"] >= 1
            assert stats["cells"]["executed"] == 1
            # The dedup hit shows as a cell_resumed event.
            kinds = [e["event"] for e in client.stream_events(again["id"])]
            assert "cell_resumed" in kinds
        finally:
            handle.stop()

    def test_stop_drains_and_restart_resumes_from_job_store(self, tmp_path):
        # Life 1: accept a job but never dispatch it, then stop (which
        # drains: states persist).  This is the SIGTERM story -- serve()
        # wires SIGTERM to exactly this stop path.
        handle, client = serve(tmp_path, start=False)
        job = client.submit(
            benchmark="perlbench", technique="rrip", config=CONFIG_BODY
        )
        assert client.get(job["id"])["state"] == "queued"
        handle.stop()

        # Life 2 over the same stores: the queued job resumes, runs,
        # and its result is served.
        handle, client = serve(tmp_path)
        try:
            final = client.wait(job["id"], timeout=90.0)
            assert final["state"] == "done"
            assert client.result(job["id"])["benchmark"] == "perlbench"
        finally:
            handle.stop()


@pytest.mark.service(timeout=240)
class TestGoldenBitIdentity:
    def test_service_sweep_equals_serial_cli_sweep(self, tmp_path):
        """The acceptance test: one sweep through the service (queued
        job, parallel workers, shared-memory stream fan-out) against the
        identical sweep run serially through the harness -- the JSON
        bodies must be equal, key for key, bit for bit."""
        benchmarks = ("perlbench",)
        techniques = ("rrip",)

        serial = parallel_single_thread_comparison(
            WorkloadCache(CONFIG), list(techniques), benchmarks, jobs=1
        )
        expected = to_dict(serial)

        handle, client = serve(
            tmp_path, jobs=2,
            stream_cache=tmp_path / "streams", shared_memory=True,
        )
        try:
            job = client.submit(
                benchmarks=list(benchmarks), techniques=list(techniques),
                sweep=True, config=CONFIG_BODY,
            )
            final = client.wait(job["id"], timeout=200.0)
            assert final["state"] == "done", final.get("error", "")
            assert client.result(job["id"]) == expected
            # The parallel path really did fan out through the stream
            # store (the warm-start machinery, not a silent fallback).
            stats = client.stats()
            assert stats["stream_store"]["enabled"]
            assert stats["stream_store"]["shared_memory"]
        finally:
            handle.stop()
