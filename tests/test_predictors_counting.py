"""Tests for the counting (LvP) predictor and the AIP variant."""

import pytest

from repro.cache import Cache, CacheAccess, CacheGeometry
from repro.core import DBRBPolicy
from repro.predictors import AIPPredictor, CountingPredictor
from repro.replacement import LRUPolicy


def small_cache(predictor, sets=4, assoc=2, bypass=True):
    geometry = CacheGeometry(size_bytes=sets * assoc * 64, associativity=assoc)
    policy = DBRBPolicy(LRUPolicy(), predictor, enable_bypass=bypass)
    return Cache(geometry, policy)


class TestCountingConstruction:
    def test_matrix_dimensions(self):
        predictor = CountingPredictor(pc_bits=8, addr_bits=8)
        assert len(predictor.counts) == 256 * 256
        assert len(predictor.confidences) == 256 * 256

    def test_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            CountingPredictor(pc_bits=0)


class TestLvPLearning:
    def test_needs_two_matching_generations(self):
        """LvP's one-bit confidence: the access count must repeat across
        two generations before predictions fire."""
        predictor = CountingPredictor()
        cache = small_cache(predictor, sets=1, assoc=1, bypass=False)
        pc = 0x30
        # Generation 1: block 0 accessed twice (fill + hit), then evicted.
        cache.access(CacheAccess(address=0, pc=pc, seq=0))
        cache.access(CacheAccess(address=0, pc=pc, seq=1))
        cache.access(CacheAccess(address=64, pc=0x99, seq=2))  # evict
        # After one generation: count learned but confidence 0.
        index = predictor._entry_index(
            predictor._hash_pc(pc), 0  # block 0's address hash is 0
        )
        assert predictor.counts[index] == 2
        assert predictor.confidences[index] == 0
        # Generation 2: same behaviour -> confidence set.
        cache.access(CacheAccess(address=0, pc=pc, seq=3))
        cache.access(CacheAccess(address=0, pc=pc, seq=4))
        cache.access(CacheAccess(address=64, pc=0x99, seq=5))
        assert predictor.confidences[index] == 1
        # Generation 3: after the second access the block is predicted dead.
        cache.access(CacheAccess(address=0, pc=pc, seq=6))
        cache.access(CacheAccess(address=0, pc=pc, seq=7))
        (_, way, block), = (
            entry for entry in cache.resident_blocks()
            if entry[2].tag == cache.geometry.tag(0)
        )
        assert block.predicted_dead

    def test_changed_behaviour_clears_confidence(self):
        predictor = CountingPredictor()
        cache = small_cache(predictor, sets=1, assoc=1, bypass=False)
        pc = 0x30
        # Gen 1: 2 accesses.  Gen 2: 3 accesses -> confidence must drop.
        for seq, (address, access_pc) in enumerate(
            [(0, pc), (0, pc), (64, 0x99), (0, pc), (0, pc), (0, pc), (64, 0x99)]
        ):
            cache.access(CacheAccess(address=address, pc=access_pc, seq=seq))
        index = predictor._entry_index(predictor._hash_pc(pc), 0)
        assert predictor.confidences[index] == 0
        assert predictor.counts[index] == 3

    def test_dead_on_arrival_bypass(self):
        """Single-touch blocks (count 1, twice in a row) bypass on the
        third generation."""
        predictor = CountingPredictor()
        cache = small_cache(predictor, sets=1, assoc=2, bypass=True)
        pc = 0x44
        seq = 0
        for _ in range(3):
            cache.access(CacheAccess(address=0, pc=pc, seq=seq)); seq += 1
            cache.access(CacheAccess(address=64, pc=0x1, seq=seq)); seq += 1
            cache.access(CacheAccess(address=128, pc=0x2, seq=seq)); seq += 1
            cache.access(CacheAccess(address=192, pc=0x3, seq=seq)); seq += 1
        assert cache.stats.bypasses > 0

    def test_count_saturates_at_four_bits(self):
        predictor = CountingPredictor(count_bits=4)
        cache = small_cache(predictor, sets=1, assoc=1, bypass=False)
        for seq in range(40):
            cache.access(CacheAccess(address=0, pc=0x5, seq=seq))
        (_, _, block), = cache.resident_blocks()
        assert block.meta["lvp_count"] == 15


class TestAIP:
    def test_runs_and_learns_intervals(self):
        predictor = AIPPredictor()
        cache = small_cache(predictor, sets=1, assoc=2, bypass=False)
        seq = 0
        for _ in range(6):
            cache.access(CacheAccess(address=0, pc=0x5, seq=seq)); seq += 1
            cache.access(CacheAccess(address=64, pc=0x6, seq=seq)); seq += 1
            cache.access(CacheAccess(address=128, pc=0x7, seq=seq)); seq += 1
        assert cache.stats.accesses == 18

    def test_is_dead_now_after_long_idle(self):
        predictor = AIPPredictor()
        cache = small_cache(predictor, sets=1, assoc=2, bypass=False)
        seq = 0
        # Teach: block 0 touched every other set-access (interval 2),
        # across two generations for confidence.
        for _ in range(2):
            for _ in range(4):
                cache.access(CacheAccess(address=0, pc=0x5, seq=seq)); seq += 1
                cache.access(CacheAccess(address=64, pc=0x6, seq=seq)); seq += 1
            # evict block 0 by conflicting fills
            cache.access(CacheAccess(address=128, pc=0x7, seq=seq)); seq += 1
            cache.access(CacheAccess(address=192, pc=0x8, seq=seq)); seq += 1
        # Re-fill block 0, then let many other accesses pass.
        cache.access(CacheAccess(address=0, pc=0x5, seq=seq)); seq += 1
        way = cache.find(0, cache.geometry.tag(0))
        assert way is not None
        for i in range(30):
            cache.access(CacheAccess(address=64, pc=0x6, seq=seq)); seq += 1
        assert predictor.is_dead_now(0, way, seq)
