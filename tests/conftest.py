"""Shared test helpers.

The helpers here build tiny caches and replay short access strings so the
unit tests can state expectations exactly.  Everything is deterministic.

Fault-injection tests (``@pytest.mark.faults``, run via ``make
test-faults``) exercise worker crashes, hangs, and timeouts, and
experiment-service tests (``@pytest.mark.service``, run via ``make
test-service``) exercise a live job server, fleet tests
(``@pytest.mark.fleet``, run via ``make test-fleet``) exercise
lease-based dispatch with real worker processes, workload tests
(``@pytest.mark.workloads``, run via ``make test-workloads``) exercise
pattern generators and trace replay, and load-simulator tests
(``@pytest.mark.loadsim``, run via ``make test-loadsim``) exercise the
discrete-event engine and arrival processes; a regression in any can
*wedge* rather than fail, so every marked test runs under a hard SIGALRM
deadline (default 120s, override with
``@pytest.mark.faults(timeout=N)`` / ``@pytest.mark.service(timeout=N)``)
that turns a hang into a loud failure instead of a stuck suite.
"""

from __future__ import annotations

import signal
from typing import Iterable, List

import pytest

from repro.cache import Cache, CacheAccess, CacheGeometry

_HARD_TEST_TIMEOUT = 120.0

#: Markers whose tests run under a hard wall-clock deadline.
_DEADLINE_MARKERS = ("faults", "service", "fleet", "workloads", "loadsim")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    marker = next(
        (m for name in _DEADLINE_MARKERS
         if (m := item.get_closest_marker(name)) is not None),
        None,
    )
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    limit = float(marker.kwargs.get("timeout", _HARD_TEST_TIMEOUT))

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"deadline-marked test {item.nodeid} exceeded its {limit}s "
            "hard deadline"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def tiny_geometry(sets: int = 4, assoc: int = 2, block: int = 64) -> CacheGeometry:
    """A small cache geometry for unit tests."""
    return CacheGeometry(
        size_bytes=sets * assoc * block, associativity=assoc, block_bytes=block
    )


def make_access(
    block_number: int,
    geometry: CacheGeometry,
    pc: int = 0x400000,
    is_write: bool = False,
    seq: int = 0,
    core: int = 0,
) -> CacheAccess:
    """Build an access to the ``block_number``-th block of the address space.

    Block numbers enumerate blocks linearly, so consecutive numbers map to
    consecutive sets and numbers ``sets`` apart collide in one set.
    """
    return CacheAccess(
        address=block_number * geometry.block_bytes,
        pc=pc,
        is_write=is_write,
        seq=seq,
        core=core,
    )


def replay(cache: Cache, block_numbers: Iterable[int], pc: int = 0x400000) -> List[bool]:
    """Access a sequence of block numbers; return the per-access hit flags."""
    results = []
    for seq, number in enumerate(block_numbers):
        access = make_access(number, cache.geometry, pc=pc, seq=seq)
        results.append(cache.access(access))
    return results


def simulate_lru_reference(
    block_numbers: Iterable[int], sets: int, assoc: int
) -> List[bool]:
    """Oracle LRU simulator used to cross-check the Cache + LRUPolicy pair.

    Implemented with per-set ordered lists, independently of the production
    code, so a bug in the real stack maintenance cannot hide.
    """
    contents: List[List[int]] = [[] for _ in range(sets)]
    hits = []
    for number in block_numbers:
        set_index = number % sets
        tag = number // sets
        bucket = contents[set_index]
        if tag in bucket:
            bucket.remove(tag)
            bucket.insert(0, tag)
            hits.append(True)
        else:
            bucket.insert(0, tag)
            if len(bucket) > assoc:
                bucket.pop()
            hits.append(False)
    return hits


@pytest.fixture
def geometry() -> CacheGeometry:
    return tiny_geometry()
