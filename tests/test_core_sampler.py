"""Tests for the sampler partial-tag array."""

import pytest

from repro.core.sampler import Sampler
from repro.core.skewed import SkewedCounterTable


def make_sampler(cache_sets=2048, num_sets=32, assoc=12, **kwargs):
    tables = SkewedCounterTable()
    return Sampler(
        tables, cache_sets=cache_sets, num_sets=num_sets, associativity=assoc, **kwargs
    ), tables


class TestSetMapping:
    def test_paper_mapping_every_64th_set(self):
        """Paper Section III-A: 2,048 cache sets / 32 sampler sets = every
        64th set is sampled."""
        sampler, _ = make_sampler()
        assert sampler.interval == 64
        assert sampler.sampler_set_for(0) == 0
        assert sampler.sampler_set_for(64) == 1
        assert sampler.sampler_set_for(2048 - 64) == 31
        assert sampler.sampler_set_for(1) is None
        assert sampler.sampler_set_for(63) is None

    def test_sampled_fraction_is_1_6_percent(self):
        """Paper: sampling references to 1.6% of sets suffices."""
        sampler, _ = make_sampler()
        sampled = sum(
            1 for s in range(2048) if sampler.sampler_set_for(s) is not None
        )
        assert sampled == 32
        assert sampled / 2048 == pytest.approx(0.015625)

    def test_small_cache_clamps_sampler(self):
        sampler, _ = make_sampler(cache_sets=16)
        assert sampler.num_sets == 16
        assert sampler.interval == 1
        assert all(sampler.sampler_set_for(s) == s for s in range(16))

    def test_rejects_bad_geometry(self):
        tables = SkewedCounterTable()
        with pytest.raises(ValueError):
            Sampler(tables, cache_sets=64, num_sets=0)
        with pytest.raises(ValueError):
            Sampler(tables, cache_sets=64, associativity=0)
        with pytest.raises(ValueError):
            Sampler(tables, cache_sets=0)


class TestPartialFields:
    def test_partial_tag_is_low_15_bits(self):
        sampler, _ = make_sampler()
        assert sampler.partial_tag(0xFFFF_FFFF) == 0x7FFF
        assert sampler.partial_tag(0x1234) == 0x1234

    def test_pc_signature_width(self):
        sampler, _ = make_sampler()
        assert 0 <= sampler.pc_signature(0xDEADBEEF) < (1 << 15)


class TestTrainingProtocol:
    def test_eviction_trains_dead(self):
        """Fill a sampler set beyond capacity with distinct tags from one
        PC: the evicted entries' signatures must accumulate dead training."""
        sampler, tables = make_sampler(cache_sets=32, num_sets=32, assoc=2)
        pc = 0x400100
        for tag in range(5):  # 5 tags through a 2-way sampler set
            sampler.access(0, tag=tag, pc=pc)
        assert sampler.evictions == 3
        assert tables.confidence(sampler.pc_signature(pc)) == 9
        assert tables.predict(sampler.pc_signature(pc))

    def test_hit_trains_live_on_previous_signature(self):
        """A sampler hit proves the *stored* signature was not the last
        touch; that signature must be decremented."""
        sampler, tables = make_sampler(cache_sets=32, num_sets=32, assoc=4)
        pc_first, pc_second = 0x400100, 0x400200
        sig_first = sampler.pc_signature(pc_first)
        # Pre-load dead confidence on pc_first.
        for _ in range(3):
            tables.train(sig_first, dead=True)
        assert tables.predict(sig_first)
        sampler.access(0, tag=7, pc=pc_first)
        sampler.access(0, tag=7, pc=pc_second)  # hit: pc_first was not last
        assert tables.confidence(sig_first) == 6
        assert not tables.predict(sig_first)

    def test_hit_updates_signature_to_new_pc(self):
        sampler, _ = make_sampler(cache_sets=32, num_sets=32, assoc=4)
        sampler.access(0, tag=7, pc=0x100)
        sampler.access(0, tag=7, pc=0x200)
        entry = next(e for e in sampler.sets[0] if e.valid)
        assert entry.signature == sampler.pc_signature(0x200)

    def test_lru_victim_order(self):
        """The sampler is LRU-managed (Section III-B): with a full set, the
        least recently touched tag is evicted first."""
        sampler, _ = make_sampler(cache_sets=32, num_sets=32, assoc=2)
        sampler.access(0, tag=1, pc=0x1)
        sampler.access(0, tag=2, pc=0x2)
        sampler.access(0, tag=1, pc=0x3)  # touch tag 1: tag 2 becomes LRU
        sampler.access(0, tag=3, pc=0x4)  # must evict tag 2
        tags = {e.partial_tag for e in sampler.sets[0] if e.valid}
        assert tags == {1, 3}

    def test_tags_never_bypass_the_sampler(self):
        """Section V-B: every access to a sampled set is placed."""
        sampler, tables = make_sampler(cache_sets=32, num_sets=32, assoc=2)
        pc = 0x900
        # Make pc itself predicted-dead first.
        for _ in range(3):
            tables.train(sampler.pc_signature(pc), dead=True)
        sampler.access(0, tag=42, pc=pc)
        assert any(e.valid and e.partial_tag == 42 for e in sampler.sets[0])

    def test_access_counters(self):
        sampler, _ = make_sampler(cache_sets=32, num_sets=32, assoc=2)
        sampler.access(0, tag=1, pc=0x1)
        sampler.access(0, tag=1, pc=0x1)
        sampler.access(0, tag=2, pc=0x1)
        assert sampler.accesses == 3
        assert sampler.hits == 1
        assert sampler.evictions == 0

    def test_prediction_bit_tracks_tables(self):
        sampler, tables = make_sampler(cache_sets=32, num_sets=32, assoc=2)
        pc = 0x700
        for _ in range(3):
            tables.train(sampler.pc_signature(pc), dead=True)
        sampler.access(0, tag=9, pc=pc)
        entry = next(e for e in sampler.sets[0] if e.partial_tag == 9)
        assert entry.prediction


class TestStorage:
    def test_entry_bits_match_paper_fields(self):
        """Section IV-C: 15-bit tag + 15-bit PC + prediction bit + valid
        bit + 4 LRU bits = 36 bits per entry (12-way sampler)."""
        sampler, _ = make_sampler()
        assert sampler.entry_bits == 36

    def test_storage_scales_with_geometry(self):
        small, _ = make_sampler(num_sets=32, assoc=12)
        large, _ = make_sampler(num_sets=128, assoc=12)
        assert large.storage_bits == 4 * small.storage_bits

    def test_sixteen_way_sampler_uses_more_storage(self):
        """Section III-B: the 12-way sampler consumes less storage than a
        16-way one."""
        twelve, _ = make_sampler(assoc=12)
        sixteen, _ = make_sampler(assoc=16)
        assert twelve.storage_bits < sixteen.storage_bits
