"""The content-addressed checkpoint store.

Pins the properties docs/robustness.md promises: round-trip fidelity,
configuration isolation (different seed/scale/budget never alias), and
the "bad checkpoint reads as missing" contract that makes resume safe
against torn or tampered files.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.harness.checkpoint import CheckpointStore, resolve_checkpoint_dir
from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.sim.system import RunResult

CONFIG = ExperimentConfig(instructions=20_000)


@pytest.fixture(scope="module")
def result():
    """One real completed cell (module-scoped: replay once, test many)."""
    from repro.harness.parallel import _run_cell_on

    return _run_cell_on(WorkloadCache(CONFIG), ("perlbench", None))


class TestResolveCheckpointDir:
    def test_explicit_wins_over_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "env"))
        assert resolve_checkpoint_dir(tmp_path / "arg") == tmp_path / "arg"

    def test_env_fallback(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "env"))
        assert resolve_checkpoint_dir() == tmp_path / "env"

    def test_unset_and_blank_disable(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        assert resolve_checkpoint_dir() is None
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", "   ")
        assert resolve_checkpoint_dir() is None
        assert CheckpointStore.from_env() is None


class TestRoundTrip:
    def test_store_then_load(self, tmp_path, result):
        store = CheckpointStore(tmp_path)
        store.store(CONFIG, "perlbench", "sampler", result)
        loaded = store.load(CONFIG, "perlbench", "sampler")
        assert isinstance(loaded, RunResult)
        assert loaded.llc_stats.snapshot() == result.llc_stats.snapshot()
        assert loaded.llc_hits == result.llc_hits
        assert loaded.ipc == result.ipc
        # Stored stripped, like a worker-boundary crossing.
        assert loaded.cache is None and loaded.observers == ()

    def test_store_does_not_mutate_the_live_result(self, tmp_path, result):
        store = CheckpointStore(tmp_path)
        store.store(CONFIG, "perlbench", "sampler", result)
        assert result.cache is not None

    def test_baseline_and_technique_cells_are_distinct(self, tmp_path, result):
        store = CheckpointStore(tmp_path)
        store.store(CONFIG, "perlbench", None, result)
        assert store.load(CONFIG, "perlbench", "sampler") is None
        assert store.load(CONFIG, "perlbench", None) is not None

    def test_len_and_clear(self, tmp_path, result):
        store = CheckpointStore(tmp_path)
        assert len(store) == 0
        store.store(CONFIG, "perlbench", None, result)
        store.store(CONFIG, "mcf", None, result)
        assert len(store) == 2
        store.clear()
        assert len(store) == 0
        assert store.load(CONFIG, "perlbench", None) is None
        # The store stays usable after clear().
        store.store(CONFIG, "mcf", "rrip", result)
        assert len(store) == 1


class TestConfigurationIsolation:
    @pytest.mark.parametrize(
        "other",
        [
            ExperimentConfig(instructions=20_000, seed=2),
            ExperimentConfig(instructions=30_000),
            ExperimentConfig(instructions=20_000, scale=16),
            ExperimentConfig(instructions=20_000, num_cores=2),
        ],
    )
    def test_different_config_never_aliases(self, tmp_path, result, other):
        store = CheckpointStore(tmp_path)
        store.store(CONFIG, "perlbench", "rrip", result)
        assert store.cell_path(CONFIG, "perlbench", "rrip") != store.cell_path(
            other, "perlbench", "rrip"
        )
        assert store.load(other, "perlbench", "rrip") is None

    def test_key_names_every_determinant(self):
        key = CheckpointStore.cell_key(CONFIG, "mcf", "sampler")
        for fragment in (
            "scale=8", "instructions=20000", "seed=1", "cores=4",
            "benchmark=mcf", "technique=sampler",
        ):
            assert fragment in key
        assert "technique=<baseline>" in CheckpointStore.cell_key(CONFIG, "mcf", None)


class TestConcurrentWriters:
    def test_two_writers_racing_on_one_key_never_tear(self, tmp_path, result):
        """Two threads storing the same cell concurrently: every read
        taken during the race sees a complete checkpoint (the atomic
        rename publishes whole files, last rename wins), never a torn
        one.  A torn publish would surface as ``load() is None`` here,
        because the store treats unreadable bytes as missing."""
        store = CheckpointStore(tmp_path)
        # Seed the cell so the file exists before the race: from here on
        # a None load can only mean a torn publish.
        store.store(CONFIG, "perlbench", "rrip", result)
        expected = result.llc_stats.snapshot()

        start = threading.Barrier(3)
        stop = threading.Event()
        problems = []

        def writer():
            start.wait()
            for _ in range(100):
                store.store(CONFIG, "perlbench", "rrip", result)

        def reader():
            start.wait()
            while not stop.is_set():
                loaded = store.load(CONFIG, "perlbench", "rrip")
                if loaded is None:
                    problems.append("load() read the cell as missing mid-race")
                    return
                if loaded.llc_stats.snapshot() != expected:
                    problems.append("load() returned a mangled result")
                    return

        threads = [threading.Thread(target=writer) for _ in range(2)]
        watcher = threading.Thread(target=reader)
        for thread in threads + [watcher]:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        watcher.join()

        assert problems == []
        # The survivor is a complete, loadable checkpoint ...
        final = store.load(CONFIG, "perlbench", "rrip")
        assert final is not None
        assert final.llc_stats.snapshot() == expected
        # ... and no writer leaked its temporary file.
        assert not list(tmp_path.rglob("*.tmp.*"))


class TestCorruptionTolerance:
    def test_torn_file_reads_as_missing(self, tmp_path, result):
        store = CheckpointStore(tmp_path)
        path = store.store(CONFIG, "perlbench", "rrip", result)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert store.load(CONFIG, "perlbench", "rrip") is None

    def test_garbage_file_reads_as_missing(self, tmp_path, result):
        store = CheckpointStore(tmp_path)
        path = store.store(CONFIG, "perlbench", "rrip", result)
        path.write_bytes(b"not a pickle at all")
        assert store.load(CONFIG, "perlbench", "rrip") is None

    def test_misplaced_checkpoint_reads_as_missing(self, tmp_path, result):
        # A valid pickle whose embedded key belongs to a different cell
        # (e.g. a hand-copied file) must not satisfy a lookup.
        store = CheckpointStore(tmp_path)
        source = store.store(CONFIG, "perlbench", "rrip", result)
        target = store.cell_path(CONFIG, "mcf", "rrip")
        target.write_bytes(source.read_bytes())
        assert store.load(CONFIG, "mcf", "rrip") is None

    def test_wrong_payload_shape_reads_as_missing(self, tmp_path, result):
        store = CheckpointStore(tmp_path)
        path = store.cell_path(CONFIG, "perlbench", "rrip")
        key = store.cell_key(CONFIG, "perlbench", "rrip")
        path.write_bytes(pickle.dumps({"key": key, "result": "not a RunResult"}))
        assert store.load(CONFIG, "perlbench", "rrip") is None

    def test_rewrite_after_corruption_recovers(self, tmp_path, result):
        store = CheckpointStore(tmp_path)
        path = store.store(CONFIG, "perlbench", "rrip", result)
        path.write_bytes(b"torn")
        store.store(CONFIG, "perlbench", "rrip", result)
        loaded = store.load(CONFIG, "perlbench", "rrip")
        assert loaded is not None
        assert loaded.llc_stats.snapshot() == result.llc_stats.snapshot()
