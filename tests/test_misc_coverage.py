"""Focused tests for smaller behaviours not covered elsewhere."""

import pytest

from repro.cache import Cache, CacheAccess, CacheGeometry, CacheStats
from repro.harness.tables import format_value
from repro.replacement import DIPPolicy, DRRIPPolicy, LRUPolicy, TADIPPolicy
from repro.sim.cpu import CoreTiming
from repro.sim.multicore import MulticoreResult


class TestLeaderSetAutoScaling:
    """DIP-family policies scale their dedicated sets with the cache
    (32 leaders per 2048 sets, the paper ratio)."""

    def test_dip_auto_ratio(self):
        geometry = CacheGeometry(2 * 1024 * 1024, 16, 64)  # 2048 sets
        policy = DIPPolicy()
        Cache(geometry, policy)
        lru_leaders = policy._set_role.count(DIPPolicy._LRU_LEADER)
        bip_leaders = policy._set_role.count(DIPPolicy._BIP_LEADER)
        assert lru_leaders == 32
        assert bip_leaders == 32

    def test_dip_scaled_cache_keeps_fraction(self):
        geometry = CacheGeometry(256 * 1024, 16, 64)  # 256 sets
        policy = DIPPolicy()
        Cache(geometry, policy)
        assert policy._set_role.count(DIPPolicy._LRU_LEADER) == 4

    def test_explicit_leader_count_respected(self):
        geometry = CacheGeometry(256 * 1024, 16, 64)
        policy = DIPPolicy(leader_sets=8)
        Cache(geometry, policy)
        assert policy._set_role.count(DIPPolicy._LRU_LEADER) == 8

    def test_tadip_auto_ratio(self):
        geometry = CacheGeometry(2 * 1024 * 1024, 16, 64)
        policy = TADIPPolicy(num_cores=4)
        Cache(geometry, policy)
        owners = [o for o in policy._leader_owner if o != TADIPPolicy._FOLLOWER]
        # 32 per policy per core, two policies, four cores.
        assert len(owners) == 32 * 2 * 4

    def test_drrip_auto_ratio(self):
        geometry = CacheGeometry(2 * 1024 * 1024, 16, 64)
        policy = DRRIPPolicy()
        Cache(geometry, policy)
        owners = [o for o in policy._leader_owner if o != DRRIPPolicy._FOLLOWER]
        assert len(owners) == 64  # 32 SRRIP + 32 BRRIP leaders


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(1.23456, precision=2) == "1.23"

    def test_none_is_dash(self):
        assert format_value(None) == "-"

    def test_int_passthrough(self):
        assert format_value(42) == "42"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"


class TestMulticoreResult:
    def make(self, ipcs, singles):
        return MulticoreResult(
            mix="m",
            technique="t",
            ipcs=ipcs,
            single_ipcs=singles,
            llc_stats=CacheStats(misses=500),
            instructions=100_000,
        )

    def test_weighted_ipc(self):
        result = self.make([1.0, 2.0], [2.0, 2.0])
        assert result.weighted_ipc == pytest.approx(1.5)

    def test_mpki(self):
        result = self.make([1.0], [1.0])
        assert result.mpki == pytest.approx(5.0)


class TestCoreTiming:
    def test_ipc(self):
        assert CoreTiming(instructions=100, cycles=50).ipc == pytest.approx(2.0)


class TestGeometryDescribeEdge:
    def test_byte_sized_cache(self):
        # 2 sets x 2 ways x 64B = 256B: falls through to the bytes branch
        # only for non-KB multiples, so construct a 3-block oddity.
        geometry = CacheGeometry(256, 2, 64)
        assert "B" in geometry.describe()


class TestTechniqueRepr:
    def test_policy_reprs_are_informative(self):
        from repro.core import DBRBPolicy, SamplingDeadBlockPredictor

        policy = DBRBPolicy(LRUPolicy(), SamplingDeadBlockPredictor())
        text = repr(policy)
        assert "DBRBPolicy" in text
        assert "SamplingDeadBlockPredictor" in text

    def test_access_repr(self):
        access = CacheAccess(address=0x40, pc=0x400, is_write=True, seq=3)
        text = repr(access)
        assert "W" in text and "0x40" in text
