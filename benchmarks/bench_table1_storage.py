"""Table I: storage overhead of the three dead block predictors.

Paper values for the 2MB / 16-way / 64B LLC (32K blocks):

=========  ====================  ==============  =========
Predictor  Predictor structures  Cache metadata  Total
=========  ====================  ==============  =========
reftrace   8KB                   64KB            72KB
counting   40KB                  68KB            108KB
sampler    3KB + 6.75KB          4KB             13.75KB
=========  ====================  ==============  =========

This is analytic, so the bench reproduces the numbers exactly.
"""

from repro.cache import CacheGeometry
from repro.harness import format_table
from repro.power import storage_table


def _render() -> str:
    geometry = CacheGeometry(2 * 1024 * 1024, 16, 64)
    paper_totals = {"reftrace": 72.0, "counting": 108.0, "sampler": 13.75}
    rows = []
    for breakdown in storage_table(geometry):
        rows.append(
            [
                breakdown.predictor,
                breakdown.structure_bits / 8 / 1024,
                breakdown.metadata_bits / 8 / 1024,
                breakdown.total_kbytes,
                paper_totals[breakdown.predictor],
                100 * breakdown.fraction_of_cache(geometry),
            ]
        )
    return format_table(
        ["predictor", "structures KB", "metadata KB", "total KB", "paper KB", "% of LLC"],
        rows,
        precision=2,
        title="Table I: predictor storage overhead (2MB LLC)",
    )


def test_table1_storage(benchmark, report):
    text = benchmark(_render)
    report("table1_storage", text)
    assert "13.75" in text  # the sampler's headline number
