"""Extension bench: the sampler versus its most influential descendant.

SHiP (Wu et al., MICRO 2011) took this paper's sampled PC-signature
learning and applied it to RRIP insertion.  This bench runs SHiP next to
the paper's comparison set on the single-thread subset -- a small
"what happened next in the literature" experiment.

Expected shape: SHiP lands in the same neighbourhood as the sampler
(both act on the same learned signal) and beats plain RRIP's static
insertion; the sampler keeps an edge where *bypass* matters (it can keep
dead blocks out entirely, which insertion-only policies cannot).
"""

from repro.harness import TECHNIQUES, format_table, single_thread_comparison


def test_ext_ship_follow_on(benchmark, workload_cache, report):
    keys = ("rrip", "ship", "sampler")
    comparison = benchmark.pedantic(
        lambda: single_thread_comparison(workload_cache, keys),
        rounds=1,
        iterations=1,
    )
    labels = [TECHNIQUES[key].label for key in keys]
    text = format_table(
        ["benchmark"] + labels,
        comparison.mpki_rows(),
        title="Extension: SHiP (2011 follow-on) vs RRIP vs the sampler "
        "(misses normalized to LRU)",
    )
    report("ext_ship_follow_on", text)

    ship = comparison.mpki_amean("ship")
    rrip = comparison.mpki_amean("rrip")
    sampler = comparison.mpki_amean("sampler")
    assert ship < 1.0, "SHiP must reduce misses over LRU"
    assert ship <= rrip + 0.02, "signature insertion must not lose to static RRIP"
    # The sampler's bypass gives it the edge on this suite.
    assert sampler <= ship + 0.02
