"""Figure 6: contribution of sampling, reduced associativity, and skew.

The paper decomposes the 5.9% gmean speedup into its components
(Section VII-A.4): the last-PC predictor alone gives 3.4%; adding the
skewed tables *without* a sampler hurts (2.3%); the sampler alone gives
3.8%; sampler+skew 4.0%; sampler at 12 ways 5.6%; everything 5.9%.

Reproduced properties: the full configuration is the best; the sampler
helps; the skewed tables only pay off *with* the sampler filtering the
signature stream (its benefit without one is negative or negligible).
"""

from repro.harness import format_table
from repro.harness.experiments import ablation_experiment


def test_fig06_ablation(benchmark, workload_cache, report):
    rows = benchmark.pedantic(
        lambda: ablation_experiment(workload_cache),
        rounds=1,
        iterations=1,
    )
    text = format_table(
        ["configuration", "gmean speedup", "paper"],
        [[label, measured, paper] for label, measured, paper in rows],
        title="Figure 6: component contributions to speedup",
    )
    report("fig06_ablation", text)

    measured = {label: value for label, value, _ in rows}
    full = measured["DBRB+sampler+3 tables+12-way"]
    assert full >= measured["DBRB alone"], "the full design must beat DBRB alone"
    assert full >= measured["DBRB+3 tables"], "the full design must beat no-sampler"
    # The paper's 12-way-vs-16-way sampler edge (5.9% vs 4.0%) is a
    # second-order effect of SPEC's reuse-depth spectrum; on the synthetic
    # suite it lands within noise, so assert near-equality rather than a
    # strict win (recorded as a deviation in EXPERIMENTS.md).
    assert full >= measured["DBRB+sampler+3 tables"] - 0.01
    assert measured["DBRB+sampler"] > 1.0, "the sampler alone must speed up"
    # Adding the sampler must dominate the sampler-less configurations.
    assert measured["DBRB+sampler+3 tables"] > measured["DBRB+3 tables"]
