"""Figure 9: coverage and false-positive rates of the three predictors.

Paper arithmetic means over the subset: reftrace predicts dead on 88% of
LLC accesses and is wrong on 19.9% of accesses; counting covers 67% with
7.19% false positives; the sampler covers 59% with only 3.0% false
positives -- "explaining why it has the highest average speedup".

Reproduced properties: the coverage ordering (reftrace > counting-or-
sampler) and, critically, the *false positive* ordering (sampler lowest,
reftrace highest), plus astar showing poor accuracy for everyone with the
sampler keeping its coverage (and therefore its damage) low there.
"""

from repro.harness import format_table
from repro.harness.experiments import accuracy_experiment

PAPER_MEANS = {
    "reftrace": (0.88, 0.199),
    "counting": (0.67, 0.0719),
    "sampler": (0.59, 0.030),
}


def test_fig09_accuracy(benchmark, workload_cache, report):
    result = benchmark.pedantic(
        lambda: accuracy_experiment(workload_cache),
        rounds=1,
        iterations=1,
    )
    benchmarks = sorted(result.coverage["sampler"])
    rows = []
    for name in benchmarks:
        rows.append(
            [name]
            + [result.coverage[p][name] for p in result.predictors]
            + [result.false_positive[p][name] for p in result.predictors]
        )
    rows.append(
        ["amean"]
        + [result.mean_coverage(p) for p in result.predictors]
        + [result.mean_false_positive(p) for p in result.predictors]
    )
    rows.append(
        ["paper amean"]
        + [PAPER_MEANS[p][0] for p in result.predictors]
        + [PAPER_MEANS[p][1] for p in result.predictors]
    )
    headers = (
        ["benchmark"]
        + [f"cov:{p}" for p in result.predictors]
        + [f"fp:{p}" for p in result.predictors]
    )
    text = format_table(
        headers,
        rows,
        title="Figure 9: predictor coverage and false-positive rate",
    )
    report("fig09_accuracy", text)

    # --- reproduced shape assertions -------------------------------------
    # Coverage ordering: reftrace predicts most aggressively (paper: 88%
    # vs 67% vs 59%).
    assert result.mean_coverage("reftrace") > result.mean_coverage("sampler")
    # The sampler's false-positive rate stays at the paper's ~3% level.
    assert result.mean_false_positive("sampler") < 0.05
    # Where generations are noisy (the scan/reuse benchmarks), reftrace's
    # false positives blow up while the sampler stays clean -- the paper's
    # central accuracy claim.  (Globally, reftrace's mean FP is compressed
    # here because the synthetic stencils/streams give it cleaner
    # per-block traces than SPEC does; recorded in EXPERIMENTS.md.)
    for benchmark in ("hmmer", "bzip2"):
        assert (
            result.false_positive["reftrace"][benchmark]
            > 3 * result.false_positive["sampler"][benchmark]
        ), benchmark
    # On astar, the sampler protects itself with low coverage relative to
    # reftrace (Section VII-C).
    assert (
        result.coverage["sampler"]["astar"]
        < result.coverage["reftrace"]["astar"]
    )
