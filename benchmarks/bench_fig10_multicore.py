"""Figure 10: quad-core shared-LLC weighted speedups.

Paper gmeans over the ten mixes, normalized to shared-LRU:

* (a) LRU default: Sampler 1.125, CDBP 1.10, TADIP 1.076, TDBP 1.056,
  RRIP 1.045; average normalized MPKIs 0.77 / 0.79 / 0.85 / 0.95 / 0.93.
* (b) random default: Random Sampler 1.07, Random CDBP 1.06, Random ~1.0.

Reproduced properties: the sampler leads both charts; every dead-block
technique beats shared LRU; the random-default sampler beats plain random.
The same 32-set sampler is used unmodified for the 4x larger shared LLC
(paper Section III-F).
"""

from repro.harness import (
    MULTICORE_LRU_TECHNIQUES,
    MULTICORE_RANDOM_TECHNIQUES,
    TECHNIQUES,
    format_table,
    multicore_comparison,
)

PAPER_GMEAN_LRU = {
    "tdbp": 1.056,
    "cdbp": 1.100,
    "tadip": 1.076,
    "rrip": 1.045,
    "sampler": 1.125,
}
PAPER_GMEAN_RANDOM = {
    "random": 1.00,
    "random_cdbp": 1.06,
    "random_sampler": 1.07,
}


def _render(comparison, paper, title):
    labels = [TECHNIQUES[key].label for key in comparison.technique_keys]
    rows = comparison.speedup_rows()
    rows.append(["paper gmean"] + [paper[key] for key in comparison.technique_keys])
    rows.append(
        ["norm. MPKI amean"]
        + [comparison.mpki_amean(key) for key in comparison.technique_keys]
    )
    return format_table(["mix"] + labels, rows, title=title)


def test_fig10a_multicore_lru(benchmark, workload_cache, report):
    comparison = benchmark.pedantic(
        lambda: multicore_comparison(workload_cache, MULTICORE_LRU_TECHNIQUES),
        rounds=1,
        iterations=1,
    )
    text = _render(
        comparison,
        PAPER_GMEAN_LRU,
        "Figure 10(a): normalized weighted speedup, shared LLC, LRU default",
    )
    report("fig10a_multicore_lru", text)

    sampler = comparison.speedup_gmean("sampler")
    assert sampler > 1.0, "the sampler must beat shared LRU"
    for key in ("tdbp", "tadip", "rrip"):
        assert sampler >= comparison.speedup_gmean(key) - 1e-9, (
            f"sampler must lead {key} on the mixes"
        )
    assert comparison.mpki_amean("sampler") < 1.0


def test_fig10b_multicore_random(benchmark, workload_cache, report):
    comparison = benchmark.pedantic(
        lambda: multicore_comparison(workload_cache, MULTICORE_RANDOM_TECHNIQUES),
        rounds=1,
        iterations=1,
    )
    text = _render(
        comparison,
        PAPER_GMEAN_RANDOM,
        "Figure 10(b): normalized weighted speedup, shared LLC, random default",
    )
    report("fig10b_multicore_random", text)

    assert comparison.speedup_gmean("random_sampler") > comparison.speedup_gmean(
        "random"
    )
    assert comparison.speedup_gmean("random_sampler") > 1.0
