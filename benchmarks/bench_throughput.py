"""Replay-engine throughput benchmark and regression harness.

Measures the simulation substrate two ways and writes a machine-readable
report (``BENCH_PR1.json`` by default):

* **substrate**: accesses/second of every Figure 4 (benchmark, technique)
  cell, replayed once through the *pre-replay-engine* cache (linear tag
  scan, per-access geometry calls, unconditional observer loops -- kept
  verbatim in :class:`_LegacyCache` below) and once through
  :func:`repro.sim.replay.replay` over the precomputed stream.  Both
  paths must produce identical :class:`~repro.cache.stats.CacheStats`;
  the run aborts otherwise.
* **end-to-end**: wall time of the Figure 4/5 sweep (workload generation,
  L1/L2 filtering, replay, timing model), serially and -- when more than
  one job is requested -- through the process-parallel runner.
* **store**: replay-ready workload preparation three ways -- cold
  compile (build_trace + L1/L2 filter + store write), warm load off the
  compiled workload store, and shared-memory attach.  All three must
  yield identical streams; a full run also writes the store section to
  ``BENCH_PR4.json`` and ``--min-store-speedup`` (default 3.0) gates the
  warm path in every mode, including ``--smoke`` under ``make check``.
* **array_kernel**: the array-eligible technique cells replayed through
  the object kernel (``REPRO_ARRAY_KERNEL=0``) and the array kernels
  (:mod:`repro.sim.replay_array`), interleaved best-of-N per cell with
  the shared :class:`~repro.cache.soa.ReplayIndex` prebuilt.  Both
  kernels must produce identical hit vectors and statistics; cells the
  substrate declines (e.g. ``small-stream``) are recorded as skipped,
  and one ineligible technique is probed to prove the automatic
  fallback.  A full run also writes the section to ``BENCH_PR6.json``,
  and ``--min-array-speedup`` (default 1.3) gates the aggregate in
  every mode.
* **sampler_kernel**: the paper's headline cells -- DBRB over the
  sampling predictor on the LRU and random defaults -- replayed
  object-vs-array the same interleaved best-of-N way.  These cells are
  *required* to run array-native (a decline aborts the run: the batched
  DBRB kernel regressed its eligibility), and the array-kernel fallback
  probe flips to an ineligible technique to keep witnessing the
  automatic object fallback.  A full run also writes the section to
  ``BENCH_PR9.json``, and ``--min-sampler-speedup`` (default 1.5) gates
  the aggregate in every mode, including ``--smoke`` under ``make
  check``.

* **loadsim**: event throughput of the discrete-event load simulator on
  a fixed two-tenant scenario (its own tiny config, so smoke and full
  numbers are comparable).  A full run also writes the section to
  ``BENCH_PR10.json``; ``--min-loadsim-speedup`` (default 0.7) gates
  the throughput against that committed baseline when it exists -- and
  the baseline's recorded event-log digest doubles as a determinism
  anchor: a digest mismatch fails the run.

Usage::

    python benchmarks/bench_throughput.py                # full, BENCH_PR1.json
    python benchmarks/bench_throughput.py --smoke        # seconds, tiny budget
    python benchmarks/bench_throughput.py --check BENCH_PR1.json
    REPRO_JOBS=4 python benchmarks/bench_throughput.py   # also times parallel

``--check OLD.json`` turns the script into a regression gate: it exits
non-zero when the freshly measured aggregate replay throughput falls
below ``--tolerance`` (default 0.7) of the recorded one.
"""

from __future__ import annotations

import argparse
import contextlib
import gc
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import repro.predictors.counting as _counting_mod  # noqa: E402
import repro.predictors.reftrace as _reftrace_mod  # noqa: E402
from repro.cache.cache import Cache, CacheAccess  # noqa: E402
from repro.core.predictor import SamplingDeadBlockPredictor  # noqa: E402
from repro.core.sampler import Sampler  # noqa: E402
from repro.core.skewed import SkewedCounterTable  # noqa: E402
from repro.harness.parallel import (  # noqa: E402
    parallel_single_thread_comparison,
    resolve_jobs,
)
from repro.harness.runner import ExperimentConfig, WorkloadCache  # noqa: E402
from repro.harness.techniques import (  # noqa: E402
    SINGLE_THREAD_TECHNIQUES,
    TECHNIQUES,
)
from repro.replacement.lru import LRUPolicy  # noqa: E402
from repro.sim.replay import replay  # noqa: E402
from repro.sim.streamstore import (  # noqa: E402
    SharedStreamExport,
    StreamStore,
    attach_shared_streams,
)
from repro.telemetry import IntervalRecorder  # noqa: E402
from repro.utils.bits import mask  # noqa: E402
from repro.utils.hashing import _MASK64, _SKEW_SALTS, mix64  # noqa: E402
from repro.workloads import SINGLE_THREAD_SUBSET  # noqa: E402

#: Techniques whose substrate throughput is measured ("lru" is the
#: baseline cell every sweep also runs).
SUBSTRATE_TECHNIQUES = ("lru",) + tuple(SINGLE_THREAD_TECHNIQUES)

#: Techniques whose policies register array replay kernels (the
#: Figure 4-8 baseline families); the array_kernel section measures
#: these cells object-vs-array.
ARRAY_TECHNIQUES = ("lru", "dip", "rrip", "random")

#: The paper's headline cells: DBRB over the sampling predictor, both
#: default policies.  The sampler_kernel section measures these and
#: *requires* the batched DBRB kernel to take them.
SAMPLER_TECHNIQUES = ("sampler", "random_sampler")

#: Interleaved trials per array-kernel cell; the best of each side is
#: kept (single-vCPU boxes jitter absolute rates, ratios stay stable).
_ARRAY_TRIALS = 5

_SMOKE_BENCHMARKS = ("perlbench", "mcf")
_SMOKE_TECHNIQUES = ("lru", "sampler")
_SMOKE_ARRAY_TECHNIQUES = ("lru",)
_SMOKE_INSTRUCTIONS = 40_000


class _LegacyCache(Cache):
    """The pre-replay-engine access path, kept verbatim as the "before"
    reference of every throughput report.

    The four overrides reproduce the original implementation: linear tag
    scans, ``geometry.set_index``/``geometry.tag`` calls per access, and
    unconditionally iterated (empty) observer lists.  None of them touch
    the tag index the modern cache maintains, so the legacy path measures
    exactly the old substrate on top of today's policies.
    """

    def find(self, set_index: int, tag: int) -> Optional[int]:
        for way, block in enumerate(self.sets[set_index]):
            if block.valid and block.tag == tag:
                return way
        return None

    def access(self, access: CacheAccess) -> bool:
        geometry = self.geometry
        set_index = geometry.set_index(access.address)
        tag = geometry.tag(access.address)
        blocks = self.sets[set_index]
        stats = self.stats
        stats.accesses += 1

        for way, block in enumerate(blocks):
            if block.valid and block.tag == tag:
                stats.hits += 1
                block.touch(access.seq, access.is_write)
                self.policy.on_hit(set_index, way, access)
                for observer in self._observers:
                    observer.on_hit(set_index, way, block, access)
                return True

        stats.misses += 1
        self.policy.on_miss(set_index, access)

        if self.policy.should_bypass(set_index, access):
            stats.bypasses += 1
            for observer in self._observers:
                observer.on_bypass(set_index, access)
            return False

        way = self._frame_for_fill(set_index, access)
        block = blocks[way]
        if block.valid:
            self._evict(set_index, way, access)
        block.fill(tag, access.seq, access.is_write)
        stats.fills += 1
        self.policy.on_fill(set_index, way, access)
        for observer in self._observers:
            observer.on_fill(set_index, way, block, access)
        return False

    def _frame_for_fill(self, set_index: int, access: CacheAccess) -> int:
        for way, block in enumerate(self.sets[set_index]):
            if not block.valid:
                return way
        way = self.policy.choose_victim(set_index, access)
        if not 0 <= way < self.geometry.associativity:
            raise ValueError(
                f"policy {self.policy!r} chose invalid victim way {way}"
            )
        return way

    def _evict(self, set_index: int, way: int, access: CacheAccess) -> None:
        block = self.sets[set_index][way]
        self.stats.evictions += 1
        if block.dirty:
            self.stats.writebacks += 1
        if block.predicted_dead:
            self.stats.dead_block_victims += 1
        self.policy.on_evict(set_index, way, access)
        for observer in self._observers:
            observer.on_evict(set_index, way, block, access)
        block.invalidate()


# ----------------------------------------------------------------------
# The pre-PR predictor/policy hot paths, frozen verbatim from the seed
# tree.  The replay-engine PR memoized signature folds and skewed-table
# indices and short-circuited identity LRU promotions; those speedups are
# part of the substrate under measurement, so the "before" runs must not
# get them.  _pre_pr_substrate() swaps these originals in for the
# duration of a legacy run.  The stats-equivalence check then doubles as
# proof that every memoization is behavior-preserving.
# ----------------------------------------------------------------------
def _legacy_fold_xor(value: int, width: int) -> int:
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    folded = 0
    value &= _MASK64
    while value:
        folded ^= value & mask(width)
        value >>= width
    return folded


def _legacy_skewed_hash(signature: int, table: int, index_bits: int) -> int:
    if table < 0:
        raise ValueError(f"table must be non-negative, got {table}")
    salt = _SKEW_SALTS[table % len(_SKEW_SALTS)] + table
    return _legacy_fold_xor(mix64(signature ^ salt), index_bits)


def _legacy_confidence(self, signature: int) -> int:
    total = 0
    for table_index, table in enumerate(self.tables):
        total += table[_legacy_skewed_hash(signature, table_index, self.index_bits)]
    return total


def _legacy_table_predict(self, signature: int) -> bool:
    return _legacy_confidence(self, signature) >= self.threshold


def _legacy_train(self, signature: int, dead: bool) -> None:
    maximum = self.counter_max
    for table_index, table in enumerate(self.tables):
        index = _legacy_skewed_hash(signature, table_index, self.index_bits)
        value = table[index]
        if dead:
            if value < maximum:
                table[index] = value + 1
        elif value > 0:
            table[index] = value - 1


def _legacy_partial_tag(self, tag: int) -> int:
    return tag & mask(self.tag_bits)


def _legacy_pc_signature(self, pc: int) -> int:
    return _legacy_fold_xor(pc, self.pc_bits)


def _legacy_signature(self, pc: int) -> int:
    return _legacy_fold_xor(pc, self._pc_bits)


def _legacy_sample(self, set_index: int, access) -> None:
    sampler = self.sampler
    if sampler is None:
        return
    sampler_set = sampler.sampler_set_for(set_index)
    if sampler_set is not None:
        sampler.access(
            sampler_set, self.cache.geometry.tag(access.address), access.pc
        )


def _legacy_promote(self, set_index: int, way: int, position: int) -> None:
    stack = self._stacks[set_index]
    stack.remove(way)
    stack.insert(position, way)


#: (owner, attribute, seed implementation) -- classes for method patches,
#: modules for their imported-by-name fold_xor reference.
_LEGACY_PATCHES = (
    (SkewedCounterTable, "confidence", _legacy_confidence),
    (SkewedCounterTable, "predict", _legacy_table_predict),
    (SkewedCounterTable, "train", _legacy_train),
    (Sampler, "partial_tag", _legacy_partial_tag),
    (Sampler, "pc_signature", _legacy_pc_signature),
    (SamplingDeadBlockPredictor, "_signature", _legacy_signature),
    (SamplingDeadBlockPredictor, "_sample", _legacy_sample),
    (LRUPolicy, "_promote", _legacy_promote),
    (_counting_mod, "fold_xor", _legacy_fold_xor),
    (_reftrace_mod, "fold_xor", _legacy_fold_xor),
)


@contextlib.contextmanager
def _pre_pr_substrate():
    """Run the enclosed block on the seed tree's hot paths."""
    saved = [
        (owner, name, getattr(owner, name)) for owner, name, _ in _LEGACY_PATCHES
    ]
    for owner, name, legacy in _LEGACY_PATCHES:
        setattr(owner, name, legacy)
    try:
        yield
    finally:
        for owner, name, original in saved:
            setattr(owner, name, original)


def _measure_substrate(workload_cache, technique_keys, benchmarks) -> Dict:
    """Time every cell through the legacy loop and the replay kernel."""
    geometry = workload_cache.machine.llc
    per_technique: Dict[str, Dict] = {
        key: {"accesses": 0, "before_seconds": 0.0, "after_seconds": 0.0}
        for key in technique_keys
    }
    for benchmark in benchmarks:
        filtered = workload_cache.filtered(benchmark)
        stream = filtered.llc_stream(geometry)
        accesses = stream.accesses
        for key in technique_keys:
            technique = TECHNIQUES[key]

            with _pre_pr_substrate():
                legacy = _LegacyCache(
                    geometry, technique.build(geometry, accesses), name="LLC"
                )
                legacy_access = legacy.access
                start = time.perf_counter()
                for access in accesses:
                    legacy_access(access)
                before = time.perf_counter() - start

            cache = Cache(geometry, technique.build(geometry, accesses), name="LLC")
            start = time.perf_counter()
            replay(cache, accesses, stream.set_indices, stream.tags)
            after = time.perf_counter() - start

            if legacy.stats.snapshot() != cache.stats.snapshot():
                raise SystemExit(
                    f"EQUIVALENCE FAILURE on ({benchmark}, {key}): "
                    f"legacy {legacy.stats.snapshot()} != "
                    f"replay {cache.stats.snapshot()}"
                )

            cell = per_technique[key]
            cell["accesses"] += len(accesses)
            cell["before_seconds"] += before
            cell["after_seconds"] += after

    total = {"accesses": 0, "before_seconds": 0.0, "after_seconds": 0.0}
    for cell in per_technique.values():
        for field in total:
            total[field] += cell[field]
        cell["before_acc_per_sec"] = cell["accesses"] / cell["before_seconds"]
        cell["after_acc_per_sec"] = cell["accesses"] / cell["after_seconds"]
        cell["speedup"] = cell["before_seconds"] / cell["after_seconds"]
    total["before_acc_per_sec"] = total["accesses"] / total["before_seconds"]
    total["after_acc_per_sec"] = total["accesses"] / total["after_seconds"]
    total["speedup"] = total["before_seconds"] / total["after_seconds"]
    return {
        "benchmarks": list(benchmarks),
        "techniques": list(technique_keys),
        "per_technique": per_technique,
        "total": total,
        "stats_equivalent": True,
    }


@contextlib.contextmanager
def _array_kernel_env(value: str):
    """Pin ``REPRO_ARRAY_KERNEL`` for one timed run, then restore it."""
    saved = os.environ.get("REPRO_ARRAY_KERNEL")
    os.environ["REPRO_ARRAY_KERNEL"] = value
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_ARRAY_KERNEL", None)
        else:
            os.environ["REPRO_ARRAY_KERNEL"] = saved


def _ineligible_probe_key() -> Optional[str]:
    """The first registered technique that is *not* array-eligible: the
    probe cell proving the replay declines to the object kernel on its
    own.  (Before the batched DBRB kernel this probe used "sampler";
    sampler cells are now required to run array-native, so the probe
    follows the registry's ``array_eligible`` flags instead.)"""
    for key, technique in TECHNIQUES.items():
        if not technique.array_eligible:
            return key
    return None


def _measure_kernel_cells(
    workload_cache, technique_keys, benchmarks,
    probe_key: Optional[str] = None, require_array: bool = False,
) -> Dict:
    """Time the given cells through both replay kernels.

    Per cell: ``_ARRAY_TRIALS`` interleaved (object, array) runs over
    the same prepared stream, best of each side kept.  The shared
    :class:`~repro.cache.soa.ReplayIndex` (and, for DBRB cells, the
    :class:`~repro.cache.soa.PredictionPlane`) is prebuilt outside the
    clocks -- both are amortized across every technique of a sweep, the
    same contract as the precomputed ``(set_index, tag)`` decomposition
    the object kernel already enjoys.  Hit vectors and statistics must
    match between kernels; a cell the substrate declines (e.g. a stream
    too small to amortize the frame planes) is recorded as skipped with
    its fallback reason -- unless ``require_array``, where a decline
    aborts the run (the sampler cells must replay array-native).
    """
    geometry = workload_cache.machine.llc
    per_technique: Dict[str, Dict] = {
        key: {"accesses": 0, "object_seconds": 0.0, "array_seconds": 0.0}
        for key in technique_keys
    }
    skipped = []
    fallback_probe = None
    for benchmark in benchmarks:
        filtered = workload_cache.filtered(benchmark)
        stream = filtered.llc_stream(geometry)
        accesses = stream.accesses
        stream.replay_index(geometry.num_sets)
        if require_array:
            stream.prediction_plane(geometry.num_sets)
        # Only probe the automatic fallback on a stream where the array
        # path actually ran: the probe should witness the *policy*
        # decline, not a size-based one.
        measured_any = False
        for key in technique_keys:
            technique = TECHNIQUES[key]
            best_object = best_array = None
            declined = None
            for _ in range(_ARRAY_TRIALS):
                with _array_kernel_env("0"):
                    cache = Cache(geometry, technique.build(geometry, accesses))
                    gc_was_enabled = gc.isenabled()
                    gc.disable()
                    start = time.perf_counter()
                    object_hits = replay(
                        cache, accesses, stream.set_indices, stream.tags,
                        stream=stream,
                    )
                    elapsed = time.perf_counter() - start
                    if gc_was_enabled:
                        gc.enable()
                object_stats = cache.stats.snapshot()
                if best_object is None or elapsed < best_object:
                    best_object = elapsed

                with _array_kernel_env("1"):
                    cache = Cache(geometry, technique.build(geometry, accesses))
                    gc_was_enabled = gc.isenabled()
                    gc.disable()
                    start = time.perf_counter()
                    array_hits = replay(
                        cache, accesses, stream.set_indices, stream.tags,
                        stream=stream,
                    )
                    elapsed = time.perf_counter() - start
                    if gc_was_enabled:
                        gc.enable()
                if cache.last_replay_kernel != "array":
                    declined = cache.last_replay_fallback
                    break
                if array_hits != object_hits or (
                    cache.stats.snapshot() != object_stats
                ):
                    raise SystemExit(
                        f"ARRAY KERNEL DIVERGENCE on ({benchmark}, {key}): "
                        f"object {object_stats} != array {cache.stats.snapshot()}"
                    )
                if best_array is None or elapsed < best_array:
                    best_array = elapsed
            if declined is not None:
                if require_array and declined.startswith(("dbrb-", "policy:")):
                    # Size/state heuristics ("small-stream", "warm-cache")
                    # may still skip a cell; an *eligibility* decline
                    # means the batched DBRB kernel regressed.
                    raise SystemExit(
                        f"SAMPLER KERNEL FALLBACK: ({benchmark}, {key}) "
                        f"declined the array path: {declined}"
                    )
                skipped.append(
                    {"benchmark": benchmark, "technique": key, "reason": declined}
                )
                continue
            cell = per_technique[key]
            cell["accesses"] += len(accesses)
            cell["object_seconds"] += best_object
            cell["array_seconds"] += best_array
            cell["kernel"] = "array"
            measured_any = True

        if fallback_probe is None and measured_any and probe_key in TECHNIQUES:
            # One ineligible technique, array path enabled: the replay
            # must decline to the object kernel on its own.
            technique = TECHNIQUES[probe_key]
            with _array_kernel_env("1"):
                cache = Cache(geometry, technique.build(geometry, accesses))
                replay(
                    cache, accesses, stream.set_indices, stream.tags, stream=stream
                )
            if cache.last_replay_kernel != "object":
                raise SystemExit(
                    f"FALLBACK FAILURE: {probe_key} cell ran kernel "
                    f"{cache.last_replay_kernel!r}"
                )
            fallback_probe = {
                "benchmark": benchmark,
                "technique": probe_key,
                "kernel": cache.last_replay_kernel,
                "reason": cache.last_replay_fallback,
            }

    total = {"accesses": 0, "object_seconds": 0.0, "array_seconds": 0.0}
    for key in list(per_technique):
        cell = per_technique[key]
        if not cell["accesses"]:
            del per_technique[key]  # every benchmark declined this cell
            continue
        for field in total:
            total[field] += cell[field]
        cell["object_acc_per_sec"] = cell["accesses"] / cell["object_seconds"]
        cell["array_acc_per_sec"] = cell["accesses"] / cell["array_seconds"]
        cell["speedup"] = cell["object_seconds"] / cell["array_seconds"]
    if total["accesses"]:
        total["object_acc_per_sec"] = total["accesses"] / total["object_seconds"]
        total["array_acc_per_sec"] = total["accesses"] / total["array_seconds"]
        total["speedup"] = total["object_seconds"] / total["array_seconds"]
    else:
        total["speedup"] = None
    return {
        "benchmarks": list(benchmarks),
        "techniques": list(technique_keys),
        "trials": _ARRAY_TRIALS,
        "per_technique": per_technique,
        "skipped": skipped,
        "fallback_probe": fallback_probe,
        "total": total,
        "results_equivalent": True,
    }


def _measure_array_kernel(workload_cache, technique_keys, benchmarks) -> Dict:
    """The Figure 4-8 baseline families, object vs array kernels, with
    the fallback probe on an ineligible technique."""
    return _measure_kernel_cells(
        workload_cache, technique_keys, benchmarks,
        probe_key=_ineligible_probe_key(),
    )


def _measure_sampler_kernel(workload_cache, benchmarks) -> Dict:
    """The DBRB sampler cells, object vs batched prediction kernel.

    ``require_array`` makes a decline fatal: every cell of this section
    doubles as the probe that sampler replays report ``kernel: "array"``
    by default now.
    """
    return _measure_kernel_cells(
        workload_cache, SAMPLER_TECHNIQUES, benchmarks, require_array=True
    )


def _measure_telemetry_overhead(workload_cache, benchmarks) -> Dict:
    """Time the sampler cell probes-off vs with an IntervalRecorder.

    Probes-off runs the unmodified inlined kernel -- its cost relative
    to the frozen legacy substrate is guarded by ``--min-speedup``.  The
    probe-on column is informational (telemetry is opt-in); both runs
    must still produce identical stats (docs/observability.md).
    """
    geometry = workload_cache.machine.llc
    technique = TECHNIQUES["sampler"]
    totals = {"accesses": 0, "off_seconds": 0.0, "on_seconds": 0.0}
    for benchmark in benchmarks:
        filtered = workload_cache.filtered(benchmark)
        stream = filtered.llc_stream(geometry)
        accesses = stream.accesses

        off_cache = Cache(geometry, technique.build(geometry, accesses))
        start = time.perf_counter()
        replay(off_cache, accesses, stream.set_indices, stream.tags)
        totals["off_seconds"] += time.perf_counter() - start

        recorder = IntervalRecorder(epochs=32)
        on_cache = Cache(
            geometry, technique.build(geometry, accesses), probe=recorder
        )
        start = time.perf_counter()
        replay(on_cache, accesses, stream.set_indices, stream.tags)
        totals["on_seconds"] += time.perf_counter() - start

        if off_cache.stats.snapshot() != on_cache.stats.snapshot():
            raise SystemExit(
                f"TELEMETRY TRANSPARENCY FAILURE on ({benchmark}, sampler): "
                f"probe-off {off_cache.stats.snapshot()} != "
                f"probe-on {on_cache.stats.snapshot()}"
            )
        totals["accesses"] += len(accesses)

    totals["off_acc_per_sec"] = totals["accesses"] / totals["off_seconds"]
    totals["on_acc_per_sec"] = totals["accesses"] / totals["on_seconds"]
    totals["on_overhead"] = (
        totals["on_seconds"] / totals["off_seconds"] - 1.0
    )
    return totals


def _replay_ready(filtered, machine):
    """Drive a workload to the replay-ready state every sweep cell needs.

    Compiled workloads decode lazily, so timing ``filtered()`` alone
    would flatter the warm paths; forcing the LLC arrays, the prepared
    stream, and the fixed latencies puts the full materialization cost
    inside the clock for all three modes.
    """
    filtered.llc_arrays()
    stream = filtered.llc_stream(machine.llc)
    filtered.fixed_latencies(machine.l1_latency, machine.l2_latency)
    return stream


def _measure_store(config, benchmarks) -> Dict:
    """Time cold compile vs warm store load vs shared-memory attach.

    Cold runs against an empty store and therefore pays build_trace,
    the L1/L2 filtering pass, stream preparation, and the store write.
    Warm re-reads the same store from a fresh cache; shm attaches the
    compiled blobs exported by the warm cache.  Any divergence in the
    prepared streams aborts the run.
    """
    per_benchmark: Dict[str, Dict] = {}
    totals = {"cold_seconds": 0.0, "warm_seconds": 0.0, "shm_seconds": 0.0}
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        store = StreamStore(tmp)
        machine = WorkloadCache(config).machine

        # One workload at a time, through a fresh cache each, exactly as
        # a pool worker experiences its first cell.  Keeping all N
        # workloads live across the timed regions would instead measure
        # full-heap GC traversals growing with N.
        for benchmark in benchmarks:
            cache = WorkloadCache(config, stream_store=store)
            start = time.perf_counter()
            stream = _replay_ready(cache.filtered(benchmark), machine)
            cold = time.perf_counter() - start
            reference = (stream.set_indices, stream.tags)
            del cache, stream

            cache = WorkloadCache(config, stream_store=store)
            start = time.perf_counter()
            stream = _replay_ready(cache.filtered(benchmark), machine)
            warm = time.perf_counter() - start
            if (stream.set_indices, stream.tags) != reference:
                raise SystemExit(f"STORE DIVERGENCE on {benchmark} (warm load)")
            if cache.stream_misses:
                raise SystemExit(
                    f"warm path recompiled {benchmark} -- the store was not hit"
                )
            compiled = cache.compiled(benchmark)  # store hit: no rebuild
            del cache, stream

            export = SharedStreamExport.create({benchmark: compiled})
            try:
                manifest = export.manifest()
                start = time.perf_counter()
                attached = attach_shared_streams(manifest)
                stream = _replay_ready(
                    attached[benchmark].filtered_trace(), machine
                )
                shm = time.perf_counter() - start
                if (stream.set_indices, stream.tags) != reference:
                    raise SystemExit(
                        f"STORE DIVERGENCE on {benchmark} (shm attach)"
                    )
                del stream
                for workload in attached.values():
                    workload.release()
            finally:
                export.close()

            per_benchmark[benchmark] = {
                "cold_seconds": cold,
                "warm_seconds": warm,
                "shm_seconds": shm,
            }
            totals["cold_seconds"] += cold
            totals["warm_seconds"] += warm
            totals["shm_seconds"] += shm

        totals["store_bytes"] = store.footprint()

    for cell in per_benchmark.values():
        cell["warm_speedup"] = cell["cold_seconds"] / cell["warm_seconds"]
    totals["warm_speedup"] = totals["cold_seconds"] / totals["warm_seconds"]
    totals["shm_speedup"] = totals["cold_seconds"] / totals["shm_seconds"]
    return {
        "benchmarks": list(benchmarks),
        "per_benchmark": per_benchmark,
        "total": totals,
        "streams_equivalent": True,
    }


def _measure_end_to_end(config, technique_keys, benchmarks, jobs) -> Dict:
    """Wall time of the Figure 4/5 sweep, serial and (optionally) parallel."""
    start = time.perf_counter()
    serial = parallel_single_thread_comparison(
        config, technique_keys, benchmarks, jobs=1
    )
    serial_seconds = time.perf_counter() - start

    parallel_seconds = None
    if jobs > 1:
        start = time.perf_counter()
        parallel = parallel_single_thread_comparison(
            config, technique_keys, benchmarks, jobs=jobs
        )
        parallel_seconds = time.perf_counter() - start
        for benchmark in benchmarks:
            for key in technique_keys:
                if (
                    serial.results[benchmark][key].llc_stats.snapshot()
                    != parallel.results[benchmark][key].llc_stats.snapshot()
                ):
                    raise SystemExit(
                        f"PARALLEL DIVERGENCE on ({benchmark}, {key})"
                    )
    return {
        "figure": "fig04_fig05_single_thread",
        "jobs": jobs,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
    }


#: Every simple pattern family, timed at the bench instruction budget.
PATTERN_BENCH_FAMILIES = ("zipf", "hotspot", "bursty", "seq", "uniform")


def _measure_patterns(config) -> Dict:
    """Pattern-generation plus trace import/replay throughput.

    Generation times each family's ``generate`` (records emitted per
    second); import times the full :class:`TraceLibrary` round-trip on
    the zipf trace (parse, canonical re-serialization, gzip blob
    write); replay times ``TraceReplayWorkload.generate`` off the warm
    library.  Records/sec, so numbers are comparable across budgets.
    """
    from repro.sim.traceio import save_trace
    from repro.workloads import TraceLibrary, TraceReplayWorkload, resolve_workload

    llc_bytes = WorkloadCache(config).machine.llc.size_bytes
    per_family: Dict[str, Dict] = {}
    generate_seconds = 0.0
    total_records = 0
    sample = None
    for family in PATTERN_BENCH_FAMILIES:
        generator = resolve_workload(family, seed=config.seed)
        start = time.perf_counter()
        trace = generator.generate(config.instructions, llc_bytes)
        elapsed = time.perf_counter() - start
        per_family[family] = {
            "records": len(trace.records),
            "seconds": elapsed,
            "rec_per_sec": len(trace.records) / elapsed,
        }
        generate_seconds += elapsed
        total_records += len(trace.records)
        if family == "zipf":
            sample = trace

    with tempfile.TemporaryDirectory(prefix="repro-bench-trace-") as tmp:
        path = Path(tmp) / "bench.trace.gz"
        save_trace(sample, path)
        library = TraceLibrary(Path(tmp) / "lib")
        start = time.perf_counter()
        entry = library.import_file(path, name="bench")
        import_seconds = time.perf_counter() - start

        workload = TraceReplayWorkload("bench", library=library)
        start = time.perf_counter()
        replayed = workload.generate(sample.instructions, llc_bytes)
        replay_seconds = time.perf_counter() - start
        if replayed.records != sample.records:
            raise SystemExit("TRACE REPLAY DIVERGENCE in the bench round-trip")

    return {
        "families": list(PATTERN_BENCH_FAMILIES),
        "per_family": per_family,
        "total": {
            "records": total_records,
            "generate_seconds": generate_seconds,
            "generate_rec_per_sec": total_records / generate_seconds,
            "import_records": int(entry["records"]),
            "import_seconds": import_seconds,
            "import_rec_per_sec": int(entry["records"]) / import_seconds,
            "replay_seconds": replay_seconds,
            "replay_rec_per_sec": len(replayed.records) / replay_seconds,
        },
    }


#: Interleaved trials for the load-simulator bench (best kept).
_LOADSIM_TRIALS = 3


def _measure_loadsim() -> Dict:
    """Event throughput of the discrete-event load simulator.

    Runs a FIXED small scenario (its own config, independent of the
    bench budget) so smoke and full baselines are directly comparable:
    two tenants -- skewed Zipf under Poisson arrivals next to mcf under
    MMPP bursts -- through sampler-driven DBRB.  Every trial must
    produce the same event-log digest (the determinism contract); the
    digest is recorded so the committed baseline doubles as a
    cross-version determinism anchor.
    """
    from repro.loadsim import LoadScenario, TenantSpec, prepare_scenario

    config = ExperimentConfig(
        scale=32, instructions=20_000, seed=1, num_cores=2
    )
    scenario = LoadScenario(
        tenants=(
            TenantSpec(workload="zipf(a=1.2)", arrival="poisson(rate=0.3)"),
            TenantSpec(workload="mcf", arrival="bursty(rate=0.2,burst=6)"),
        ),
        duration=2_000_000.0,
        seed=11,
        epochs=8,
    )
    prepared = prepare_scenario(WorkloadCache(config), scenario)
    best_seconds = None
    result = None
    for _ in range(_LOADSIM_TRIALS):
        gc.collect()
        start = time.perf_counter()
        trial = prepared.run("sampler")
        elapsed = time.perf_counter() - start
        if result is None:
            result = trial
        elif trial.event_log_digest() != result.event_log_digest():
            raise SystemExit(
                "LOADSIM NONDETERMINISM: bench trials of one scenario "
                "produced different event logs"
            )
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    events = len(result.events)
    requests = sum(tenant.arrived for tenant in result.tenants)
    return {
        "scenario": result.scenario,
        "technique": result.technique,
        "trials": _LOADSIM_TRIALS,
        "total": {
            "events": events,
            "requests": requests,
            "llc_accesses": result.llc_stats.accesses,
            "seconds": best_seconds,
            "events_per_sec": events / best_seconds,
            "p50_latency": result.p50,
            "p95_latency": result.p95,
            "p99_latency": result.p99,
            "fairness": result.fairness,
            "event_log_digest": result.event_log_digest(),
        },
    }


def _print_report(report: Dict) -> None:
    substrate = report["substrate"]
    print(f"\nsubstrate throughput ({len(substrate['benchmarks'])} benchmarks):")
    header = f"  {'technique':14s} {'before acc/s':>14s} {'after acc/s':>14s} {'speedup':>8s}"
    print(header)
    for key, cell in substrate["per_technique"].items():
        print(
            f"  {key:14s} {cell['before_acc_per_sec']:>14,.0f} "
            f"{cell['after_acc_per_sec']:>14,.0f} {cell['speedup']:>7.2f}x"
        )
    total = substrate["total"]
    print(
        f"  {'TOTAL':14s} {total['before_acc_per_sec']:>14,.0f} "
        f"{total['after_acc_per_sec']:>14,.0f} {total['speedup']:>7.2f}x"
    )
    array_section = report["array_kernel"]
    print(
        f"\narray kernel ({len(array_section['benchmarks'])} benchmarks, "
        f"best of {array_section['trials']} interleaved trials):"
    )
    print(f"  {'technique':14s} {'object acc/s':>14s} {'array acc/s':>14s} {'speedup':>8s}")
    for key, cell in array_section["per_technique"].items():
        print(
            f"  {key:14s} {cell['object_acc_per_sec']:>14,.0f} "
            f"{cell['array_acc_per_sec']:>14,.0f} {cell['speedup']:>7.2f}x"
        )
    array_total = array_section["total"]
    if array_total["speedup"] is not None:
        print(
            f"  {'TOTAL':14s} {array_total['object_acc_per_sec']:>14,.0f} "
            f"{array_total['array_acc_per_sec']:>14,.0f} "
            f"{array_total['speedup']:>7.2f}x"
        )
    for cell in array_section["skipped"]:
        print(
            f"  skipped ({cell['benchmark']}, {cell['technique']}): "
            f"{cell['reason']}"
        )
    probe = array_section["fallback_probe"]
    if probe is not None:
        print(
            f"  fallback probe ({probe['benchmark']}, {probe['technique']}): "
            f"kernel={probe['kernel']} reason={probe['reason']}"
        )
    sampler_section = report["sampler_kernel"]
    print(
        f"\nsampler kernel ({len(sampler_section['benchmarks'])} benchmarks, "
        f"best of {sampler_section['trials']} interleaved trials, "
        "array path required):"
    )
    print(f"  {'technique':14s} {'object acc/s':>14s} {'array acc/s':>14s} {'speedup':>8s}")
    for key, cell in sampler_section["per_technique"].items():
        print(
            f"  {key:14s} {cell['object_acc_per_sec']:>14,.0f} "
            f"{cell['array_acc_per_sec']:>14,.0f} {cell['speedup']:>7.2f}x"
        )
    sampler_total = sampler_section["total"]
    if sampler_total["speedup"] is not None:
        print(
            f"  {'TOTAL':14s} {sampler_total['object_acc_per_sec']:>14,.0f} "
            f"{sampler_total['array_acc_per_sec']:>14,.0f} "
            f"{sampler_total['speedup']:>7.2f}x"
        )
    telemetry = report["telemetry"]
    print(
        f"\ntelemetry (sampler cell): probes-off "
        f"{telemetry['off_acc_per_sec']:,.0f} acc/s, probe-on "
        f"{telemetry['on_acc_per_sec']:,.0f} acc/s "
        f"({telemetry['on_overhead']:+.1%} recorder overhead)"
    )
    store = report["store"]["total"]
    print(
        f"\nworkload store ({len(report['store']['benchmarks'])} workloads, "
        f"{store['store_bytes'] / 1024.0 / 1024.0:.1f} MiB): cold "
        f"{store['cold_seconds']:.2f}s, warm {store['warm_seconds']:.2f}s "
        f"({store['warm_speedup']:.1f}x), shm {store['shm_seconds']:.2f}s "
        f"({store['shm_speedup']:.1f}x)"
    )
    patterns = report["patterns"]
    print(f"\npattern workloads ({len(patterns['families'])} families):")
    print(f"  {'family':14s} {'records':>10s} {'rec/s':>14s}")
    for family, cell in patterns["per_family"].items():
        print(
            f"  {family:14s} {cell['records']:>10,d} "
            f"{cell['rec_per_sec']:>14,.0f}"
        )
    pattern_total = patterns["total"]
    print(
        f"  {'TOTAL':14s} {pattern_total['records']:>10,d} "
        f"{pattern_total['generate_rec_per_sec']:>14,.0f}"
    )
    print(
        f"  trace import {pattern_total['import_rec_per_sec']:,.0f} rec/s, "
        f"replay {pattern_total['replay_rec_per_sec']:,.0f} rec/s "
        f"({pattern_total['import_records']} records round-tripped)"
    )
    loadsim = report["loadsim"]["total"]
    print(
        f"\nload simulator (fixed 2-tenant scenario, best of "
        f"{report['loadsim']['trials']}): "
        f"{loadsim['events_per_sec']:,.0f} events/s "
        f"({loadsim['events']} events, {loadsim['requests']} requests, "
        f"{loadsim['llc_accesses']} LLC accesses in "
        f"{loadsim['seconds']:.3f}s; p99 {loadsim['p99_latency']:.0f}cy, "
        f"digest {loadsim['event_log_digest'][:12]})"
    )
    end_to_end = report["end_to_end"]
    line = (
        f"\nend-to-end {end_to_end['figure']}: "
        f"serial {end_to_end['serial_seconds']:.1f}s"
    )
    if end_to_end["parallel_seconds"] is not None:
        line += (
            f", parallel ({end_to_end['jobs']} jobs) "
            f"{end_to_end['parallel_seconds']:.1f}s"
        )
    print(line)


def _check_regression(report: Dict, baseline_path: Path, tolerance: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    old = baseline["substrate"]["total"]["after_acc_per_sec"]
    new = report["substrate"]["total"]["after_acc_per_sec"]
    floor = tolerance * old
    verdict = "OK" if new >= floor else "REGRESSION"
    print(
        f"\nregression check vs {baseline_path}: {new:,.0f} acc/s vs "
        f"baseline {old:,.0f} (floor {floor:,.0f}): {verdict}"
    )
    return 0 if new >= floor else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny budget, two benchmarks, single job (harness validation)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="report path (default BENCH_PR1.json, BENCH_SMOKE.json with --smoke)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the end-to-end timing (default REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--check", type=Path, default=None,
        help="compare against a previous report; exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.7,
        help="fraction of baseline throughput still accepted by --check",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.3,
        help="probes-off guard: minimum aggregate speedup of the replay "
        "kernel over the frozen legacy substrate (exit 1 below it)",
    )
    parser.add_argument(
        "--min-store-speedup", type=float, default=3.0,
        help="workload-store guard: minimum speedup of a warm store load "
        "over a cold compile (exit 1 below it)",
    )
    parser.add_argument(
        "--store-output", type=Path, default=None,
        help="where to write the store section on its own "
        "(default BENCH_PR4.json; not written with --smoke)",
    )
    parser.add_argument(
        "--min-array-speedup", type=float, default=1.3,
        help="array-kernel guard: minimum aggregate speedup of the array "
        "kernels over the object kernel on eligible cells (exit 1 below it)",
    )
    parser.add_argument(
        "--array-output", type=Path, default=None,
        help="where to write the array-kernel section on its own "
        "(default BENCH_PR6.json; not written with --smoke)",
    )
    parser.add_argument(
        "--min-sampler-speedup", type=float, default=1.5,
        help="sampler-kernel guard: minimum aggregate speedup of the "
        "batched DBRB kernel over the object kernel on the sampler "
        "cells (exit 1 below it)",
    )
    parser.add_argument(
        "--sampler-output", type=Path, default=None,
        help="where to write the sampler-kernel section on its own "
        "(default BENCH_PR9.json; not written with --smoke)",
    )
    parser.add_argument(
        "--patterns-output", type=Path, default=None,
        help="where to write the pattern-workload section on its own "
        "(default BENCH_PR8.json; not written with --smoke)",
    )
    parser.add_argument(
        "--min-loadsim-speedup", type=float, default=0.7,
        help="load-simulator guard: minimum fraction of the committed "
        "BENCH_PR10.json event throughput still accepted (exit 1 below "
        "it); skipped with a note when no baseline exists",
    )
    parser.add_argument(
        "--loadsim-output", type=Path, default=None,
        help="where to write the load-simulator section on its own "
        "(default BENCH_PR10.json; not written with --smoke)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        config = ExperimentConfig(
            scale=ExperimentConfig().scale, instructions=_SMOKE_INSTRUCTIONS
        )
        benchmarks = _SMOKE_BENCHMARKS
        technique_keys = _SMOKE_TECHNIQUES
        array_techniques = _SMOKE_ARRAY_TECHNIQUES
        jobs = 1 if args.jobs is None else args.jobs
    else:
        config = ExperimentConfig.from_env()
        benchmarks = SINGLE_THREAD_SUBSET
        technique_keys = SUBSTRATE_TECHNIQUES
        array_techniques = ARRAY_TECHNIQUES
        jobs = resolve_jobs(args.jobs)

    print(f"machine: {config.describe()}")
    print(f"substrate cells: {len(benchmarks)} benchmarks x "
          f"{len(technique_keys)} techniques, both access paths")

    workload_cache = WorkloadCache(config)
    report = {
        "schema": "repro-bench/1",
        "unix_time": time.time(),
        "smoke": args.smoke,
        "config": {
            "scale": config.scale,
            "instructions": config.instructions,
            "seed": config.seed,
        },
        "substrate": _measure_substrate(workload_cache, technique_keys, benchmarks),
        "array_kernel": _measure_array_kernel(
            workload_cache, array_techniques, benchmarks
        ),
        "sampler_kernel": _measure_sampler_kernel(workload_cache, benchmarks),
        "telemetry": _measure_telemetry_overhead(workload_cache, benchmarks),
        "store": _measure_store(config, benchmarks),
        "patterns": _measure_patterns(config),
        "loadsim": _measure_loadsim(),
        "end_to_end": _measure_end_to_end(
            config,
            [k for k in technique_keys if k != "lru"],
            benchmarks,
            jobs,
        ),
    }
    _print_report(report)

    output = args.output
    if output is None:
        output = REPO_ROOT / ("BENCH_SMOKE.json" if args.smoke else "BENCH_PR1.json")
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nreport written to {output}")

    # The store section also stands alone as the committed PR 4 baseline.
    # Smoke runs skip it by default so `make check` never clobbers the
    # full-budget numbers.
    store_output = args.store_output
    if store_output is None and not args.smoke:
        store_output = REPO_ROOT / "BENCH_PR4.json"
    if store_output is not None:
        store_report = {
            "schema": "repro-bench-store/1",
            "unix_time": report["unix_time"],
            "smoke": args.smoke,
            "config": report["config"],
            "store": report["store"],
        }
        store_output.write_text(
            json.dumps(store_report, indent=2, sort_keys=True) + "\n"
        )
        print(f"store report written to {store_output}")

    # Likewise the array-kernel section stands alone as the PR 6
    # baseline; smoke runs keep it inside BENCH_SMOKE.json only.
    array_output = args.array_output
    if array_output is None and not args.smoke:
        array_output = REPO_ROOT / "BENCH_PR6.json"
    if array_output is not None:
        array_report = {
            "schema": "repro-bench-array/1",
            "unix_time": report["unix_time"],
            "smoke": args.smoke,
            "config": report["config"],
            "array_kernel": report["array_kernel"],
        }
        array_output.write_text(
            json.dumps(array_report, indent=2, sort_keys=True) + "\n"
        )
        print(f"array-kernel report written to {array_output}")

    # The sampler-kernel section stands alone as the PR 9 baseline;
    # smoke runs keep it inside BENCH_SMOKE.json only.
    sampler_output = args.sampler_output
    if sampler_output is None and not args.smoke:
        sampler_output = REPO_ROOT / "BENCH_PR9.json"
    if sampler_output is not None:
        sampler_report = {
            "schema": "repro-bench-sampler/1",
            "unix_time": report["unix_time"],
            "smoke": args.smoke,
            "config": report["config"],
            "sampler_kernel": report["sampler_kernel"],
        }
        sampler_output.write_text(
            json.dumps(sampler_report, indent=2, sort_keys=True) + "\n"
        )
        print(f"sampler-kernel report written to {sampler_output}")

    # The pattern-workload section stands alone as the PR 8 baseline;
    # smoke runs keep it inside BENCH_SMOKE.json only.
    patterns_output = args.patterns_output
    if patterns_output is None and not args.smoke:
        patterns_output = REPO_ROOT / "BENCH_PR8.json"
    if patterns_output is not None:
        patterns_report = {
            "schema": "repro-bench-patterns/1",
            "unix_time": report["unix_time"],
            "smoke": args.smoke,
            "config": report["config"],
            "patterns": report["patterns"],
        }
        patterns_output.write_text(
            json.dumps(patterns_report, indent=2, sort_keys=True) + "\n"
        )
        print(f"pattern-workload report written to {patterns_output}")

    # The load-simulator section stands alone as the PR 10 baseline;
    # smoke runs keep it inside BENCH_SMOKE.json only (pass
    # --loadsim-output explicitly to write it from a smoke run -- the
    # section's scenario is fixed, so the numbers are comparable).
    loadsim_output = args.loadsim_output
    if loadsim_output is None and not args.smoke:
        loadsim_output = REPO_ROOT / "BENCH_PR10.json"
    if loadsim_output is not None:
        loadsim_report = {
            "schema": "repro-bench-loadsim/1",
            "unix_time": report["unix_time"],
            "smoke": args.smoke,
            "config": report["config"],
            "loadsim": report["loadsim"],
        }
        loadsim_output.write_text(
            json.dumps(loadsim_report, indent=2, sort_keys=True) + "\n"
        )
        print(f"load-simulator report written to {loadsim_output}")

    # Probes-off guard: with telemetry disabled (the default), the replay
    # kernel must still beat the frozen in-file legacy substrate by the
    # configured margin -- a slow fast path means the probe hooks leaked
    # cost into the default configuration.
    speedup = report["substrate"]["total"]["speedup"]
    if speedup < args.min_speedup:
        print(
            f"\nPROBES-OFF OVERHEAD: aggregate speedup {speedup:.2f}x fell "
            f"below the floor {args.min_speedup:.2f}x"
        )
        return 1

    # Array-kernel guard: on the cells whose policies registered array
    # kernels, the array path must beat the object kernel by the
    # configured margin -- a slower array path means the substrate's
    # eligibility rules are letting losing replays through.
    array_speedup = report["array_kernel"]["total"]["speedup"]
    if array_speedup is None:
        print("\nARRAY KERNEL GUARD: no eligible cell was measured")
        return 1
    if array_speedup < args.min_array_speedup:
        print(
            f"\nARRAY KERNEL REGRESSION: aggregate speedup "
            f"{array_speedup:.2f}x fell below the floor "
            f"{args.min_array_speedup:.2f}x"
        )
        return 1

    # Sampler-kernel guard: the batched DBRB kernel must beat the object
    # kernel on the paper's headline cells by a wider margin than the
    # generic floor -- it replaces the predictor simulation wholesale, so
    # a thin win means the plane precompute leaked into the replay.
    sampler_speedup = report["sampler_kernel"]["total"]["speedup"]
    if sampler_speedup is None:
        print("\nSAMPLER KERNEL GUARD: no sampler cell was measured")
        return 1
    if sampler_speedup < args.min_sampler_speedup:
        print(
            f"\nSAMPLER KERNEL REGRESSION: aggregate speedup "
            f"{sampler_speedup:.2f}x fell below the floor "
            f"{args.min_sampler_speedup:.2f}x"
        )
        return 1

    # Warm-start guard: loading a compiled workload off the store must
    # stay decisively cheaper than recompiling it, or the store is dead
    # weight.  Runs in every mode, so `make check` (bench-smoke) gates it.
    store_speedup = report["store"]["total"]["warm_speedup"]
    if store_speedup < args.min_store_speedup:
        print(
            f"\nWORKLOAD STORE REGRESSION: warm-load speedup "
            f"{store_speedup:.2f}x fell below the floor "
            f"{args.min_store_speedup:.2f}x"
        )
        return 1

    # Load-simulator guard: gated only against a committed baseline --
    # a repo without BENCH_PR10.json (or with a partial one) skips with
    # a note rather than failing, mirroring `report --bench` tolerance.
    loadsim_total = report["loadsim"]["total"]
    loadsim_baseline = REPO_ROOT / "BENCH_PR10.json"
    baseline_total = None
    if loadsim_baseline.exists():
        try:
            baseline = json.loads(loadsim_baseline.read_text())
            candidate = (baseline.get("loadsim") or {}).get("total")
            if isinstance(candidate, dict):
                baseline_total = candidate
        except (OSError, ValueError):
            baseline_total = None
    if baseline_total is None:
        print(
            "\nloadsim guard: no usable BENCH_PR10.json baseline; "
            "gate skipped"
        )
    else:
        base_digest = baseline_total.get("event_log_digest")
        if base_digest and base_digest != loadsim_total["event_log_digest"]:
            print(
                "\nLOADSIM DETERMINISM REGRESSION: the fixed bench "
                f"scenario's event log digest "
                f"{loadsim_total['event_log_digest'][:12]} no longer "
                f"matches the committed baseline {str(base_digest)[:12]}"
            )
            return 1
        base_rate = baseline_total.get("events_per_sec")
        if base_rate:
            floor = args.min_loadsim_speedup * base_rate
            if loadsim_total["events_per_sec"] < floor:
                print(
                    f"\nLOADSIM THROUGHPUT REGRESSION: "
                    f"{loadsim_total['events_per_sec']:,.0f} events/s fell "
                    f"below {args.min_loadsim_speedup:.2f}x of the "
                    f"baseline {base_rate:,.0f} (floor {floor:,.0f})"
                )
                return 1
        print(
            "\nloadsim guard: digest matches baseline, "
            f"{loadsim_total['events_per_sec']:,.0f} events/s >= floor; ok"
        )

    if args.check is not None:
        return _check_regression(report, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
