"""Figures 7 and 8: misses and speedup with a default *random* LLC.

The paper's Section VII-B argument: true LRU is too expensive at 16 ways,
and the sampling predictor can rescue a randomly replaced cache -- random
replacement alone costs 2.5% more misses than LRU and 1.1% performance,
but Random+Sampler lands at 0.925 normalized MPKI (7.5% *better* than the
LRU baseline) and a 3.4% speedup, while Random+CDBP is a wash.
Everything stays normalized to the same LRU baseline, as in the paper.

Reproduced properties: random alone is worse than LRU; the sampler turns
the random cache better than LRU; the sampler beats CDBP in this role.
"""

from repro.harness import (
    RANDOM_DEFAULT_TECHNIQUES,
    TECHNIQUES,
    format_table,
    parallel_single_thread_comparison,
)

PAPER_MPKI_AMEAN = {"random": 1.025, "random_cdbp": 1.00, "random_sampler": 0.925}
PAPER_SPEEDUP_GMEAN = {"random": 0.989, "random_cdbp": 1.001, "random_sampler": 1.034}


def test_fig07_fig08_random_default(benchmark, workload_cache, report):
    # Honors REPRO_JOBS: >1 fans the (benchmark, technique) cells over
    # worker processes with bit-identical results (docs/performance.md).
    comparison = benchmark.pedantic(
        lambda: parallel_single_thread_comparison(
            workload_cache, RANDOM_DEFAULT_TECHNIQUES
        ),
        rounds=1,
        iterations=1,
    )
    labels = [TECHNIQUES[key].label for key in RANDOM_DEFAULT_TECHNIQUES]

    mpki_rows = comparison.mpki_rows()
    mpki_rows.append(
        ["paper amean"] + [PAPER_MPKI_AMEAN[key] for key in RANDOM_DEFAULT_TECHNIQUES]
    )
    fig7 = format_table(
        ["benchmark"] + labels,
        mpki_rows,
        title="Figure 7: normalized MPKI with a default random policy",
    )
    speed_rows = comparison.speedup_rows()
    speed_rows.append(
        ["paper gmean"]
        + [PAPER_SPEEDUP_GMEAN[key] for key in RANDOM_DEFAULT_TECHNIQUES]
    )
    fig8 = format_table(
        ["benchmark"] + labels,
        speed_rows,
        title="Figure 8: speedup over LRU with a default random policy",
    )
    report("fig07_mpki_random", fig7)
    report("fig08_speedup_random", fig8)

    # --- reproduced shape assertions -------------------------------------
    random_alone = comparison.mpki_amean("random")
    random_sampler = comparison.mpki_amean("random_sampler")
    random_cdbp = comparison.mpki_amean("random_cdbp")
    assert random_alone > 1.0, "random replacement must cost misses vs LRU"
    assert random_sampler < 1.0, "the sampler must beat even the LRU baseline"
    assert random_sampler < random_cdbp
    assert comparison.speedup_gmean("random_sampler") > 1.0
    assert comparison.speedup_gmean("random_sampler") > comparison.speedup_gmean(
        "random"
    )
