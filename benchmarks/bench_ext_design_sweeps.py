"""Extension benches: the design-space claims the paper states in prose.

These are not figures in the paper, but each corresponds to a specific
quantitative claim in the text, so we regenerate the evidence:

* Section III-A: "32 sets provide a good trade-off between accuracy and
  efficiency" -- sweep the sampler set count.
* Section III-E: "a threshold of eight gives the best accuracy" -- sweep
  the skewed-table confidence threshold.
* Section III-B: a 12-way sampler "offers better prediction accuracy
  than a 16-way sampler" -- sweep sampler associativity.
* Section II-A.3: cache bursts "offer little advantage for higher level
  caches, since most bursts are filtered out by the L1" -- measure the
  burst-length collapse at the LLC versus an unfiltered L1-level stream.
"""

from repro.core import DBRBPolicy, SamplingDeadBlockPredictor
from repro.harness import format_table
from repro.predictors import BurstFilter, RefTracePredictor
from repro.replacement import LRUPolicy
from repro.sim.metrics import geometric_mean

SWEEP_BENCHMARKS = ("hmmer", "libquantum", "soplex", "zeusmp", "astar")


def _gmean_speedup(workload_cache, predictor_kwargs):
    speedups = []
    for benchmark in SWEEP_BENCHMARKS:
        filtered = workload_cache.filtered(benchmark)
        base = workload_cache.system.run(
            filtered, lambda g, a: LRUPolicy(), "lru"
        )
        result = workload_cache.system.run(
            filtered,
            lambda g, a, kw=predictor_kwargs: DBRBPolicy(
                LRUPolicy(), SamplingDeadBlockPredictor(**kw)
            ),
            "sweep",
        )
        if base.ipc > 0 and result.ipc > 0:
            speedups.append(result.ipc / base.ipc)
    return geometric_mean(speedups)


def test_ext_sampler_set_sweep(benchmark, workload_cache, report):
    """Sampler set count: accuracy saturates around the paper's 32."""
    set_counts = (4, 8, 16, 32, 64)

    def run():
        return [
            (sets, _gmean_speedup(workload_cache, dict(sampler_sets=sets)))
            for sets in set_counts
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["sampler sets", "gmean speedup"],
        rows,
        title="Extension: sampler set count sweep (paper SIII-A: 32 suffices)",
    )
    report("ext_sampler_sets", text)
    by_sets = dict(rows)
    # The paper's claim: a handful of sets already generalizes; going from
    # 32 to 64 buys little.
    assert by_sets[32] > 1.0
    assert abs(by_sets[64] - by_sets[32]) < 0.05
    assert by_sets[32] >= by_sets[4] - 0.02


def test_ext_threshold_sweep(benchmark, workload_cache, report):
    """Confidence threshold: too low -> false positives, too high -> no
    coverage; the paper picks 8."""
    thresholds = (2, 4, 6, 8, 9)

    def run():
        return [
            (threshold, _gmean_speedup(workload_cache, dict(threshold=threshold)))
            for threshold in thresholds
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["threshold", "gmean speedup"],
        rows,
        title="Extension: dead-confidence threshold sweep (paper SIII-E: 8)",
    )
    report("ext_threshold", text)
    by_threshold = dict(rows)
    best = max(by_threshold.values())
    # 8 must be at (or within noise of) the sweet spot, and must beat the
    # aggressive threshold-2 configuration.
    assert by_threshold[8] >= best - 0.02
    assert by_threshold[8] >= by_threshold[2]


def test_ext_sampler_associativity_sweep(benchmark, workload_cache, report):
    """Sampler associativity around the paper's 12."""
    associativities = (8, 10, 12, 14, 16)

    def run():
        return [
            (assoc, _gmean_speedup(workload_cache, dict(sampler_assoc=assoc)))
            for assoc in associativities
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["sampler ways", "gmean speedup"],
        rows,
        title="Extension: sampler associativity sweep (paper SIII-B: 12)",
    )
    report("ext_sampler_assoc", text)
    by_assoc = dict(rows)
    # 12 ways performs within noise of the best configuration (the paper's
    # 12-vs-16 edge is second-order; see EXPERIMENTS.md).
    assert by_assoc[12] >= max(by_assoc.values()) - 0.03


def test_ext_bursts_filtered_at_llc(benchmark, workload_cache, report):
    """Cache bursts at the LLC: the L1/L2 have already absorbed the
    repeated touches, so bursts degenerate to single accesses and the
    filter saves almost no predictor traffic (paper SII-A.3)."""

    def run():
        rows = []
        for name in ("hmmer", "libquantum", "omnetpp"):
            filtered = workload_cache.filtered(name)
            predictor = BurstFilter(RefTracePredictor())
            workload_cache.system.run(
                filtered,
                lambda g, a, p=predictor: DBRBPolicy(LRUPolicy(), p),
                "bursts",
                compute_timing=False,
            )
            raw = predictor.raw_events
            bursts = predictor.burst_events
            rows.append([name, raw, bursts, bursts / raw if raw else 0.0])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["benchmark", "LLC events", "burst events", "burst/event ratio"],
        rows,
        title="Extension: burst filtering at the LLC (paper SII-A.3)",
    )
    report("ext_bursts_llc", text)
    for name, raw, bursts, ratio in rows:
        # At the LLC, bursts barely compress the event stream (paper: most
        # bursts are filtered out by the L1).  A burst filter at the L1
        # would show ratios far below 1.
        assert ratio > 0.6, name
