"""Figure 1: dead block replacement and bypass "bring the cache to life".

The paper renders 456.hmmer's per-frame live-time ratio as a greyscale --
22% efficiency under LRU versus 87% with sampler-driven DBRB.  This bench
reproduces the experiment on the synthetic hmmer analogue: the efficiency
gap (sampler >> LRU) is the reproduced property; both greyscales are
written alongside the numbers.
"""

from repro.analysis import render_greyscale
from repro.harness import efficiency_experiment


def test_fig01_efficiency(benchmark, workload_cache, report):
    result = benchmark.pedantic(
        lambda: efficiency_experiment(workload_cache, benchmark="hmmer"),
        rounds=1,
        iterations=1,
    )
    text = "\n".join(
        [
            "Figure 1: cache efficiency (live-time ratio), hmmer",
            "",
            f"(a) LRU cache:              {result.lru_efficiency:6.1%}   (paper: 22%)",
            f"(b) sampler-DBRB cache:     {result.sampler_efficiency:6.1%}   (paper: 87%)",
            "",
            "LRU greyscale (rows = sets, cols = ways; darker = dead longer):",
            render_greyscale(result.lru_matrix),
            "",
            "Sampler-DBRB greyscale:",
            render_greyscale(result.sampler_matrix),
        ]
    )
    report("fig01_efficiency", text)

    # The reproduced claim: DBRB at least doubles cache efficiency here.
    assert result.sampler_efficiency > 1.5 * result.lru_efficiency
