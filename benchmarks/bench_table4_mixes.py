"""Table IV: the ten quad-core workload mixes.

The composition is reproduced verbatim from the paper; this bench builds
each mix's four traces on the configured machine and reports their
aggregate memory character (the paper's table shows per-mix cache
sensitivity curves; we summarize each mix by its cores' solo MPKIs).
"""

from repro.harness import TECHNIQUES, format_table
from repro.workloads import MIXES


def test_table4_mixes(benchmark, workload_cache, report):
    lru = TECHNIQUES["lru"]

    def run():
        rows = []
        for mix_name, members in MIXES.items():
            mpkis = []
            for member in members:
                filtered = workload_cache.filtered(member)
                result = workload_cache.system.run(
                    filtered,
                    lambda g, a: lru.build(g, a),
                    "lru",
                    compute_timing=False,
                )
                mpkis.append(result.mpki)
            rows.append([mix_name, " ".join(members)] + [round(m, 1) for m in mpkis])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["mix", "benchmarks", "mpki0", "mpki1", "mpki2", "mpki3"],
        rows,
        precision=1,
        title="Table IV: quad-core mixes (per-core solo LRU MPKI)",
    )
    report("table4_mixes", text)

    assert len(rows) == 10
    assert rows[0][1] == "mcf hmmer libquantum omnetpp"
