"""Table III: the 29-benchmark characterization.

The paper lists, per SPEC CPU 2006 benchmark, the LLC misses per
kilo-instruction under LRU and under optimal replacement+bypass (MIN),
and the IPC under LRU, with the memory-intensive subset in boldface (our
"subset" column).  Absolute MPKI here is higher than the paper's because
the synthetic traces are denser in memory operations (see EXPERIMENTS.md);
the *relative* ordering -- streamers and the pointer chase at the top,
the compute-bound group near zero -- is the reproduced property.
"""

from repro.harness import characterization_table, format_table


def test_table3_characterization(benchmark, workload_cache, report):
    rows = benchmark.pedantic(
        lambda: characterization_table(workload_cache),
        rounds=1,
        iterations=1,
    )
    text = format_table(
        ["benchmark", "MPKI (LRU)", "MPKI (MIN)", "IPC (LRU)", "subset"],
        rows,
        precision=2,
        title="Table III: benchmark characterization",
    )
    report("table3_characterization", text)

    by_name = {row[0]: row for row in rows}
    # MIN never loses to LRU, and the subset really is the memory-bound part.
    for name, lru_mpki, min_mpki, ipc, _ in rows:
        assert min_mpki <= lru_mpki + 1e-9, name
        assert ipc > 0, name
    assert by_name["mcf"][1] > by_name["gamess"][1]
    assert by_name["libquantum"][1] > by_name["povray"][1]
