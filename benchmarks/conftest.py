"""Shared fixtures for the paper-reproduction benchmarks.

Every ``bench_*`` module regenerates one table or figure of the paper.
The machine scale and instruction budget come from the environment
(``REPRO_SCALE``, ``REPRO_INSTRUCTIONS``, ``REPRO_SEED``; see
:mod:`repro.harness.runner`), and all modules share one
:class:`~repro.harness.WorkloadCache` so trace generation and L1/L2
filtering are paid once per workload for the whole session.

Each benchmark writes its rendered table to ``benchmarks/results/`` and
echoes it to stdout (visible with ``pytest -s``); EXPERIMENTS.md records
the paper-vs-measured comparison for the checked-in configuration.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness import ExperimentConfig, WorkloadCache

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return ExperimentConfig.from_env()


@pytest.fixture(scope="session")
def workload_cache(config) -> WorkloadCache:
    return WorkloadCache(config)


@pytest.fixture(scope="session")
def report(config):
    """Write a rendered experiment table to disk and echo it."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        header = f"# {name}\n# {config.describe()}\n\n"
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(header + text + "\n")
        print(f"\n{header}{text}\n[written to {path}]")

    return _report
