"""Extension bench: seed robustness of the headline comparison.

The synthetic workloads are stochastic; a reproduction claim is only as
good as its stability across seeds.  This bench reruns the LRU-vs-Sampler
comparison on three representative benchmarks under three different
workload seeds and checks that the sampler's miss reduction holds for
every seed (direction, not magnitude, is the invariant).
"""

from repro.harness import ExperimentConfig, WorkloadCache, format_table
from repro.harness.experiments import single_thread_comparison

BENCHMARKS = ("hmmer", "libquantum", "soplex")
SEEDS = (1, 7, 42)


def test_ext_seed_sensitivity(benchmark, config, report):
    def run():
        rows = []
        for seed in SEEDS:
            seeded = ExperimentConfig(
                scale=config.scale,
                instructions=min(config.instructions, 250_000),
                seed=seed,
            )
            cache = WorkloadCache(seeded)
            comparison = single_thread_comparison(
                cache, technique_keys=("sampler",), benchmarks=BENCHMARKS
            )
            for name in BENCHMARKS:
                rows.append(
                    [
                        seed,
                        name,
                        comparison.normalized_mpki(name, "sampler"),
                        comparison.speedup(name, "sampler"),
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["seed", "benchmark", "sampler norm. MPKI", "sampler speedup"],
        rows,
        title="Extension: seed sensitivity of the sampler's gains",
    )
    report("ext_seed_sensitivity", text)

    for seed, name, norm_mpki, speedup in rows:
        assert norm_mpki < 1.0, f"seed {seed} / {name}: sampler must reduce misses"
        assert speedup > 1.0, f"seed {seed} / {name}: sampler must speed up"
    # Magnitudes should agree across seeds within a loose band per benchmark.
    for name in BENCHMARKS:
        values = [row[2] for row in rows if row[1] == name]
        assert max(values) - min(values) < 0.15, name
