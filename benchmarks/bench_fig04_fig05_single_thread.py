"""Figures 4 and 5: single-thread misses and speedup with a default LRU LLC.

Paper aggregates over the 19-benchmark subset:

=========  =====================  ====================
Technique  amean normalized MPKI  gmean speedup
=========  =====================  ====================
TDBP       1.080                  ~1.000
CDBP       0.954                  1.023
DIP        0.939                  1.031
RRIP       0.919                  1.041
Sampler    0.883                  1.059
Optimal    0.814                  (misses only)
=========  =====================  ====================

Reproduced properties: the sampler reduces misses the most of any
realizable technique and delivers the best speedup; optimal bounds it;
TDBP is the weakest dead-block technique, dragged down by astar (the
paper's Section VII-A.3/VII-C story).  One run feeds both figures, as in
the paper.
"""

from repro.harness import (
    SINGLE_THREAD_TECHNIQUES,
    TECHNIQUES,
    format_table,
    parallel_single_thread_comparison,
)

PAPER_MPKI_AMEAN = {
    "tdbp": 1.080,
    "cdbp": 0.954,
    "dip": 0.939,
    "rrip": 0.919,
    "sampler": 0.883,
    "optimal": 0.814,
}
PAPER_SPEEDUP_GMEAN = {
    "tdbp": 1.000,
    "cdbp": 1.023,
    "dip": 1.031,
    "rrip": 1.041,
    "sampler": 1.059,
}


def test_fig04_fig05_single_thread_lru(benchmark, workload_cache, report):
    # Honors REPRO_JOBS: >1 fans the (benchmark, technique) cells over
    # worker processes with bit-identical results (docs/performance.md).
    comparison = benchmark.pedantic(
        lambda: parallel_single_thread_comparison(
            workload_cache, SINGLE_THREAD_TECHNIQUES
        ),
        rounds=1,
        iterations=1,
    )
    labels = [TECHNIQUES[key].label for key in SINGLE_THREAD_TECHNIQUES]

    mpki_rows = comparison.mpki_rows()
    mpki_rows.append(
        ["paper amean"] + [PAPER_MPKI_AMEAN[key] for key in SINGLE_THREAD_TECHNIQUES]
    )
    fig4 = format_table(
        ["benchmark"] + labels,
        mpki_rows,
        title="Figure 4: LLC misses normalized to LRU (default LRU policy)",
    )

    speed_keys = [
        key for key in SINGLE_THREAD_TECHNIQUES if TECHNIQUES[key].timing_meaningful
    ]
    speed_rows = comparison.speedup_rows(technique_keys=speed_keys)
    speed_rows.append(
        ["paper gmean"] + [PAPER_SPEEDUP_GMEAN[key] for key in speed_keys]
    )
    fig5 = format_table(
        ["benchmark"] + [TECHNIQUES[key].label for key in speed_keys],
        speed_rows,
        title="Figure 5: speedup over LRU (default LRU policy)",
    )
    report("fig04_mpki_lru", fig4)
    report("fig05_speedup_lru", fig5)

    # --- reproduced shape assertions -------------------------------------
    sampler = comparison.mpki_amean("sampler")
    optimal = comparison.mpki_amean("optimal")
    assert optimal <= sampler, "optimal must bound the sampler"
    assert sampler < 1.0, "sampler must reduce misses on average"
    for key in ("tdbp", "cdbp", "dip", "rrip"):
        assert sampler <= comparison.mpki_amean(key) + 1e-9, (
            f"sampler must beat {key} on average misses"
        )
    assert comparison.speedup_gmean("sampler") > comparison.speedup_gmean("dip")
    assert comparison.speedup_gmean("sampler") > comparison.speedup_gmean("tdbp")
    # astar is the predictor-hostile benchmark: TDBP suffers most there.
    assert comparison.normalized_mpki("astar", "tdbp") > 1.0
    assert (
        comparison.normalized_mpki("astar", "tdbp")
        >= comparison.normalized_mpki("astar", "cdbp")
    )
