"""Extension benches: the paper's Section VIII future-work optimizations.

"We plan to investigate the use of sampling predictors for optimizations
other than replacement and bypass."  Two such optimizations, built on the
sampling predictor:

* **dead-block-directed prefetching** (the original Lai et al. use case):
  fill predicted-dead frames with sequential/correlated prefetches;
* **virtual victim cache** (Khan et al., PACT 2010): park live victims of
  hot sets in predicted-dead frames of a partner set.
"""

from repro.cache import Cache
from repro.core import DBRBPolicy, SamplingDeadBlockPredictor
from repro.harness import format_table
from repro.prefetch import NextBlockPrefetcher, PrefetchEngine
from repro.replacement import LRUPolicy
from repro.sim.system import build_llc_accesses
from repro.vvc import VictimRelocationCache


def test_ext_dead_block_prefetching(benchmark, workload_cache, report):
    """Prefetching into dead blocks on the streaming/stencil benchmarks:
    the stream's frames are predicted dead, so next-block prefetching can
    run ahead of the demand front without displacing live data."""
    benchmarks = ("milc", "lbm", "leslie3d", "hmmer")

    def run():
        rows = []
        machine = workload_cache.machine
        for name in benchmarks:
            filtered = workload_cache.filtered(name)
            accesses = build_llc_accesses(filtered)

            def dbrb_policy():
                return DBRBPolicy(
                    LRUPolicy(),
                    SamplingDeadBlockPredictor(),
                    enable_bypass=False,  # dead frames host prefetches instead
                )

            baseline = Cache(machine.llc, dbrb_policy(), "LLC")
            base_misses = sum(0 if baseline.access(a) else 1 for a in accesses)

            cache = Cache(machine.llc, dbrb_policy(), "LLC")
            engine = PrefetchEngine(cache, NextBlockPrefetcher(degree=2))
            pf_misses = sum(0 if hit else 1 for hit in engine.run(accesses))
            engine.finalize()
            rows.append(
                [
                    name,
                    base_misses,
                    pf_misses,
                    pf_misses / base_misses if base_misses else 1.0,
                    engine.stats.issued,
                    engine.stats.accuracy,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["benchmark", "DBRB misses", "+prefetch misses", "ratio", "issued", "accuracy"],
        rows,
        title="Extension: prefetching into dead blocks (paper SVIII / Lai et al.)",
    )
    report("ext_prefetch", text)

    by_name = {row[0]: row for row in rows}
    # Streams are sequential: prefetching into their dead frames must
    # remove a substantial share of the misses.  (Concurrent streams
    # compete for the per-set dead-frame supply, which bounds coverage --
    # the winner's chain self-sustains while later streams get throttled.)
    assert by_name["milc"][3] < 0.75
    assert by_name["lbm"][3] < 0.75
    # And it must never hurt (it only uses dead frames).
    for name, *_ in rows:
        assert by_name[name][3] <= 1.02


def test_ext_virtual_victim_cache(benchmark, workload_cache, report):
    """Victim relocation into dead frames: hot sets borrow dead capacity
    from their partner sets (Khan et al. PACT 2010)."""
    benchmarks = ("hmmer", "xalancbmk", "sphinx3")

    def run():
        rows = []
        machine = workload_cache.machine
        for name in benchmarks:
            filtered = workload_cache.filtered(name)
            accesses = build_llc_accesses(filtered)

            def dbrb_policy():
                return DBRBPolicy(LRUPolicy(), SamplingDeadBlockPredictor())

            plain = Cache(machine.llc, dbrb_policy(), "LLC")
            plain_misses = sum(0 if plain.access(a) else 1 for a in accesses)

            vvc = VictimRelocationCache(machine.llc, dbrb_policy(), "LLC")
            vvc_misses = sum(0 if vvc.access(a) else 1 for a in accesses)
            rows.append(
                [
                    name,
                    plain_misses,
                    vvc_misses,
                    vvc_misses / plain_misses if plain_misses else 1.0,
                    vvc.vvc_stats.relocations,
                    vvc.vvc_stats.vvc_hits,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["benchmark", "DBRB misses", "+VVC misses", "ratio", "relocations", "VVC hits"],
        rows,
        title="Extension: virtual victim cache over dead blocks (PACT 2010)",
    )
    report("ext_vvc", text)

    for name, plain, vvc, ratio, relocations, hits in rows:
        assert relocations > 0, name
        assert ratio <= 1.05, name  # parking victims must not hurt much
    # At least one benchmark should genuinely profit from borrowed capacity.
    assert min(row[3] for row in rows) < 1.0
