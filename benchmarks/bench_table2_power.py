"""Table II: leakage and dynamic power of the predictor components.

Paper anchors (Section IV-D): the baseline 2MB LLC draws 2.75W dynamic /
0.512W leakage; the sampling predictor consumes 3.1% of the LLC's dynamic
power (counting: 11%) and 1.2% of its leakage (reftrace: 2.9%, counting:
4.7%).  The CACTI-lite model is calibrated to those anchors (see
``repro/power/cacti.py``), so this bench checks the reproduction stays on
them.
"""

from repro.harness import format_table
from repro.power import predictor_power_table

#: Paper Table II / Section IV-D percentages of the LLC budget.
PAPER_PERCENT = {
    "reftrace": (2.9, 5.5),   # (leakage %, dynamic % = 0.15W / 2.75W)
    "counting": (4.7, 11.0),
    "sampler": (1.2, 3.1),
}


def _render() -> str:
    rows = []
    for report_row in predictor_power_table():
        paper_leak, paper_dyn = PAPER_PERCENT[report_row.predictor]
        rows.append(
            [
                report_row.predictor,
                report_row.total_leakage,
                report_row.total_dynamic,
                report_row.llc_leakage_percent,
                paper_leak,
                report_row.llc_dynamic_percent,
                paper_dyn,
            ]
        )
    return format_table(
        [
            "predictor",
            "leakage W",
            "dynamic W",
            "leak % LLC",
            "paper leak %",
            "dyn % LLC",
            "paper dyn %",
        ],
        rows,
        precision=3,
        title="Table II: predictor power (CACTI-lite, calibrated to paper anchors)",
    )


def test_table2_power(benchmark, report):
    text = benchmark(_render)
    report("table2_power", text)
    rows = {r.predictor: r for r in predictor_power_table()}
    assert abs(rows["sampler"].llc_dynamic_percent - 3.1) < 0.5
    assert abs(rows["sampler"].llc_leakage_percent - 1.2) < 0.3
