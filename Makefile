# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test bench bench-fast results clean help

help:
	@echo "install     editable install (falls back to setup.py develop)"
	@echo "test        run the unit/property test suite"
	@echo "bench       regenerate every paper table and figure"
	@echo "bench-fast  quick bench pass (scale 1/32, short traces)"
	@echo "results     show the rendered experiment tables"
	@echo "clean       remove caches and generated results"

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-fast:
	REPRO_SCALE=32 REPRO_INSTRUCTIONS=80000 $(PYTHON) -m pytest benchmarks/ --benchmark-only

results:
	@for f in benchmarks/results/*.txt; do echo; cat $$f; done

clean:
	rm -rf .pytest_cache benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
