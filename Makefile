# Convenience targets for the reproduction.

PYTHON ?= python

# Let every target run from a fresh clone, installed or not.
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: install test test-faults test-service test-fleet test-workloads test-loadsim lint check bench bench-smoke serve-smoke fleet-smoke pattern-smoke loadsim-smoke figures figures-fast results clean clean-cache help

# The compiled workload store (see docs/performance.md).  `make clean`
# leaves it alone -- warm starts are the point; `make clean-cache`
# removes it explicitly.
REPRO_STREAM_CACHE ?= .repro-cache

help:
	@echo "install      editable install (falls back to setup.py develop)"
	@echo "test         run the unit/property test suite"
	@echo "test-faults  fault-injection / supervision tests only (hard per-test deadlines)"
	@echo "test-service experiment-service tests only (hard per-test deadlines)"
	@echo "test-fleet   worker-fleet tests only: leases, heartbeats, re-dispatch, chaos (hard per-test deadlines)"
	@echo "test-workloads pattern-generator and trace-replay tests only (hard per-test deadlines)"
	@echo "test-loadsim load-simulator tests only: engine, arrivals, determinism, golden percentiles (hard per-test deadlines)"
	@echo "lint         ruff check (skips with a notice when ruff is not installed)"
	@echo "check        lint + test suite + fault tests + bench-smoke + serve-smoke + fleet-smoke + pattern-smoke + loadsim-smoke (the default pre-commit gate)"
	@echo "bench        measure replay-engine throughput -> BENCH_PR1.json"
	@echo "bench-smoke  tiny-budget bench harness validation -> BENCH_SMOKE.json"
	@echo "serve-smoke  boot the job service, run a sweep through the client SDK, assert bit-identity with serial"
	@echo "fleet-smoke  chaos gate: fleet server + 2 workers, one chaos-killed mid-lease; re-dispatch must yield a bit-identical sweep"
	@echo "pattern-smoke tiny Zipf-skew sweep through the service; must be bit-identical to serial, dedup fully, and 400 bad specs"
	@echo "loadsim-smoke tiny 2-tenant load simulation, DBRB vs LRU; asserts byte-identical determinism and non-degenerate latency percentiles"
	@echo "figures      regenerate every paper table and figure"
	@echo "figures-fast quick figure pass (scale 1/32, short traces)"
	@echo "results      show the rendered experiment tables"
	@echo "clean        remove caches and generated results (keeps the workload store)"
	@echo "clean-cache  remove the compiled workload store ($(REPRO_STREAM_CACHE))"

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# The fault-injection tests kill, stall, and time out sweep workers on
# purpose; each runs under a hard SIGALRM deadline (see tests/conftest.py)
# so a hang regression fails fast instead of wedging the suite.
test-faults:
	$(PYTHON) -m pytest tests/ -m faults

# The service tests boot a real asyncio job server (ephemeral ports,
# spawn pools); they carry the same hard SIGALRM deadlines so a hung
# server fails fast instead of wedging tier-1.
test-service:
	$(PYTHON) -m pytest tests/ -m service

# The fleet tests exercise lease-based dispatch, heartbeat expiry,
# journal recovery, and chaos injection against real worker code; same
# hard per-test deadlines as the other liveness-sensitive suites.
test-fleet:
	$(PYTHON) -m pytest tests/ -m fleet

# Pattern-generator and trace-replay tests: spec grammar, hypothesis
# determinism, library round-trips, content-addressed key regressions.
test-workloads:
	$(PYTHON) -m pytest tests/ -m workloads

# Load-simulator tests: event-loop engine, arrival processes, the
# byte-identical determinism property, and the golden percentile pins.
test-loadsim:
	$(PYTHON) -m pytest tests/ -m loadsim

# Lint config lives in pyproject.toml ([tool.ruff]).  Ruff is optional --
# environments without it (e.g. the hermetic CI container) skip the gate
# with a notice rather than failing the whole check.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	elif command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "lint: ruff not installed, skipping (pip install ruff to enable)"; \
	fi

check: lint test test-faults bench-smoke serve-smoke fleet-smoke pattern-smoke loadsim-smoke

bench:
	$(PYTHON) benchmarks/bench_throughput.py

bench-smoke:
	$(PYTHON) benchmarks/bench_throughput.py --smoke

# Boots a real job server on an ephemeral port, runs a tiny sweep
# through the client SDK (parallel workers + shared-memory streams),
# and asserts bit-identity with the serial harness path.  Runs under a
# hard SIGALRM deadline so a wedged server fails the gate loudly.
serve-smoke:
	$(PYTHON) -m repro.service.smoke

# Boots a fleet-mode server plus two real `repro worker` subprocesses,
# chaos-kills one mid-lease (REPRO_CHAOS=kill:1@1), and requires the
# re-dispatched sweep to come out bit-identical to the serial run with
# the re-dispatch/dedup counters visible in /v1/stats.
fleet-smoke:
	$(PYTHON) -m repro.service.smoke_fleet

# Runs a tiny two-point Zipf-skew sweep through a live server (parallel
# workers + stream store + shm) and requires bit-identity with the
# serial harness, full dedup on resubmission, and a 400 with a
# closest-match suggestion for a misspelled pattern family.
pattern-smoke:
	$(PYTHON) -m repro.service.smoke_patterns

# Tiny 2-tenant load-simulation scenario, DBRB vs LRU: re-runs must be
# byte-identical (event-log digest + latency series), both techniques
# must see the same arrivals, and the latency percentiles must be
# non-degenerate.
loadsim-smoke:
	$(PYTHON) -m repro.loadsim.smoke

figures:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

figures-fast:
	REPRO_SCALE=32 REPRO_INSTRUCTIONS=80000 $(PYTHON) -m pytest benchmarks/ --benchmark-only

results:
	@for f in benchmarks/results/*.txt; do echo; cat $$f; done

# BENCH_PR*.json are committed per-PR baselines and must survive a
# clean; every other BENCH_*.json at the repo root (e.g. BENCH_SMOKE)
# is a dropping from a local bench run.  The compiled workload store is
# deliberately NOT cleaned here -- that is what clean-cache is for.
clean:
	rm -rf .pytest_cache .hypothesis .benchmarks benchmarks/results src/repro.egg-info
	find . -maxdepth 1 -name 'BENCH_*.json' ! -name 'BENCH_PR*.json' -delete
	find . -name __pycache__ -type d -exec rm -rf {} +

clean-cache:
	rm -rf $(REPRO_STREAM_CACHE)
